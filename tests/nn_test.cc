#include "src/nn/nn.h"

#include <cmath>
#include <cstdio>

#include <gtest/gtest.h>

namespace balsa::nn {
namespace {

// Central finite difference of a scalar function of one weight.
template <typename Fn>
double NumericalGrad(float* weight, Fn&& loss, double eps = 1e-3) {
  float saved = *weight;
  *weight = static_cast<float>(saved + eps);
  double up = loss();
  *weight = static_cast<float>(saved - eps);
  double down = loss();
  *weight = saved;
  return (up - down) / (2 * eps);
}

TEST(MatTest, Layout) {
  Mat m(2, 3);
  m.at(1, 2) = 5.f;
  EXPECT_EQ(m.data[1 * 3 + 2], 5.f);
  m.Zero();
  EXPECT_EQ(m.at(1, 2), 0.f);
}

TEST(MatVecTest, MatchesManual) {
  Mat w(2, 3);
  // w = [[1,2,3],[4,5,6]]
  for (int i = 0; i < 6; ++i) w.data[i] = static_cast<float>(i + 1);
  Vec x{1.f, 0.f, -1.f};
  Vec y(2, 0.f);
  MatVec(w, x, &y);
  EXPECT_FLOAT_EQ(y[0], 1 - 3);
  EXPECT_FLOAT_EQ(y[1], 4 - 6);
}

TEST(LinearTest, GradCheck) {
  Rng rng(1);
  Linear layer(4, 3, &rng);
  Vec x{0.5f, -1.f, 2.f, 0.1f};

  auto loss = [&] {
    Vec y(3, 0.f);
    layer.Forward(x, &y);
    double l = 0;
    for (float v : y) l += v * v;
    return l;
  };

  // Analytic gradient.
  Vec y(3, 0.f);
  layer.Forward(x, &y);
  Vec dy(3);
  for (int i = 0; i < 3; ++i) dy[i] = 2 * y[i];
  Vec dx(4, 0.f);
  layer.w().ZeroGrad();
  layer.b().ZeroGrad();
  layer.Backward(x, dy, &dx);

  // Check a few weights, the bias, and the input gradient.
  for (int idx : {0, 5, 11}) {
    double num = NumericalGrad(&layer.w().value.data[idx], loss);
    EXPECT_NEAR(layer.w().grad.data[idx], num, 1e-2 + std::abs(num) * 0.05)
        << "w[" << idx << "]";
  }
  double num_b = NumericalGrad(&layer.b().value.data[1], loss);
  EXPECT_NEAR(layer.b().grad.data[1], num_b, 1e-2 + std::abs(num_b) * 0.05);

  for (int i = 0; i < 4; ++i) {
    float saved = x[i];
    auto loss_x = [&] {
      Vec yy(3, 0.f);
      layer.Forward(x, &yy);
      double l = 0;
      for (float v : yy) l += v * v;
      return l;
    };
    x[i] = saved + 1e-3f;
    double up = loss_x();
    x[i] = saved - 1e-3f;
    double down = loss_x();
    x[i] = saved;
    EXPECT_NEAR(dx[i], (up - down) / 2e-3, 1e-2 + std::abs(dx[i]) * 0.05);
  }
}

TreeSample ThreeNodeTree(int dim) {
  // node0 = root(join), children node1, node2.
  TreeSample t;
  t.features = {Vec(dim, 0.3f), Vec(dim, -0.2f), Vec(dim, 0.9f)};
  t.left = {1, -1, -1};
  t.right = {2, -1, -1};
  return t;
}

TEST(TreeConvTest, MissingChildrenContributeZero) {
  Rng rng(2);
  TreeConvLayer layer(3, 2, &rng);
  TreeSample t = ThreeNodeTree(3);
  std::vector<Vec> out;
  layer.Forward(t.features, t.left, t.right, &out);
  ASSERT_EQ(out.size(), 3u);
  // A leaf's output depends only on Wp f + b (no child terms): computing
  // with zeroed children features must agree.
  std::vector<Vec> leaf_only{t.features[1]};
  std::vector<int> none{-1};
  std::vector<Vec> out_leaf;
  layer.Forward(leaf_only, none, none, &out_leaf);
  for (size_t i = 0; i < out_leaf[0].size(); ++i) {
    EXPECT_FLOAT_EQ(out[1][i], out_leaf[0][i]);
  }
}

TEST(TreeConvTest, GradCheck) {
  Rng rng(3);
  TreeConvLayer layer(3, 2, &rng);
  TreeSample t = ThreeNodeTree(3);

  auto loss = [&] {
    std::vector<Vec> out;
    layer.Forward(t.features, t.left, t.right, &out);
    double l = 0;
    for (const Vec& node : out) {
      for (float v : node) l += v * v;
    }
    return l;
  };

  std::vector<Param*> params;
  layer.CollectParams(&params);
  for (Param* p : params) p->ZeroGrad();

  std::vector<Vec> out;
  layer.Forward(t.features, t.left, t.right, &out);
  std::vector<Vec> dout(out.size());
  for (size_t i = 0; i < out.size(); ++i) {
    dout[i].resize(out[i].size());
    for (size_t j = 0; j < out[i].size(); ++j) dout[i][j] = 2 * out[i][j];
  }
  std::vector<Vec> din(t.features.size(), Vec(3, 0.f));
  layer.Backward(t.features, t.left, t.right, dout, &din);

  for (Param* p : params) {
    for (size_t idx = 0; idx < std::min<size_t>(4, p->value.data.size());
         ++idx) {
      double num = NumericalGrad(&p->value.data[idx], loss);
      EXPECT_NEAR(p->grad.data[idx], num, 1e-2 + std::abs(num) * 0.05);
    }
  }
}

TEST(PoolTest, MaxPoolAndBackward) {
  std::vector<Vec> nodes{{1.f, -5.f}, {0.f, 2.f}, {3.f, 0.f}};
  Vec out;
  std::vector<int> argmax;
  DynamicMaxPool(nodes, &out, &argmax);
  EXPECT_FLOAT_EQ(out[0], 3.f);
  EXPECT_FLOAT_EQ(out[1], 2.f);
  EXPECT_EQ(argmax[0], 2);
  EXPECT_EQ(argmax[1], 1);

  Vec dout{1.f, 10.f};
  std::vector<Vec> dnodes(3, Vec(2, 0.f));
  DynamicMaxPoolBackward(dout, argmax, &dnodes);
  EXPECT_FLOAT_EQ(dnodes[2][0], 1.f);
  EXPECT_FLOAT_EQ(dnodes[1][1], 10.f);
  EXPECT_FLOAT_EQ(dnodes[0][0], 0.f);
}

TEST(ReluTest, ForwardBackward) {
  Vec x{-1.f, 0.f, 2.f};
  ReluForward(&x);
  EXPECT_FLOAT_EQ(x[0], 0.f);
  EXPECT_FLOAT_EQ(x[2], 2.f);
  Vec dy{5.f, 5.f, 5.f};
  ReluBackward(x, &dy);
  EXPECT_FLOAT_EQ(dy[0], 0.f);  // gradient gated by post-activation
  EXPECT_FLOAT_EQ(dy[2], 5.f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimize (w - 3)^2 with Adam.
  Param w(1, 1);
  w.value.data[0] = 0.f;
  Adam::Options opts;
  opts.lr = 0.1;
  Adam adam({&w}, opts);
  for (int step = 0; step < 300; ++step) {
    w.grad.data[0] = 2 * (w.value.data[0] - 3.f);
    adam.Step(1);
  }
  EXPECT_NEAR(w.value.data[0], 3.f, 0.05);
  EXPECT_EQ(adam.num_steps(), 300);
}

TEST(AdamTest, GradClipBoundsUpdates) {
  Param w(1, 1);
  Adam::Options opts;
  opts.lr = 0.001;
  opts.grad_clip = 1.0;
  Adam adam({&w}, opts);
  w.grad.data[0] = 1e6f;  // absurd gradient
  adam.Step(1);
  // Clipped: the first Adam step is bounded by lr regardless of magnitude.
  EXPECT_LT(std::abs(w.value.data[0]), 0.01f);
}

TEST(ParamIoTest, SaveLoadRoundTrip) {
  Rng rng(4);
  Linear a(3, 2, &rng), b(3, 2, &rng);
  std::vector<Param*> pa, pb;
  a.CollectParams(&pa);
  b.CollectParams(&pb);
  std::string path = ::testing::TempDir() + "/params.bin";
  ASSERT_TRUE(SaveParams(pa, path).ok());
  ASSERT_TRUE(LoadParams(pb, path).ok());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i]->value.data, pb[i]->value.data);
  }
}

TEST(ParamIoTest, CopyParams) {
  Rng rng(5);
  Linear a(3, 2, &rng), b(3, 2, &rng);
  std::vector<Param*> pa, pb;
  a.CollectParams(&pa);
  b.CollectParams(&pb);
  EXPECT_NE(pa[0]->value.data, pb[0]->value.data);
  ASSERT_TRUE(CopyParams(pa, pb).ok());
  EXPECT_EQ(pa[0]->value.data, pb[0]->value.data);
}

TEST(ParamIoTest, LoadRejectsShapeMismatch) {
  Rng rng(6);
  Linear a(3, 2, &rng);
  Linear c(5, 2, &rng);
  std::vector<Param*> pa, pc;
  a.CollectParams(&pa);
  c.CollectParams(&pc);
  std::string path = ::testing::TempDir() + "/params2.bin";
  ASSERT_TRUE(SaveParams(pa, path).ok());
  EXPECT_FALSE(LoadParams(pc, path).ok());
}

}  // namespace
}  // namespace balsa::nn
