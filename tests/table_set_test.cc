#include "src/util/table_set.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace balsa {
namespace {

TEST(TableSetTest, EmptyAndSingle) {
  TableSet empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.size(), 0);

  TableSet s = TableSet::Single(5);
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s.size(), 1);
  EXPECT_TRUE(s.Contains(5));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_EQ(s.First(), 5);
}

TEST(TableSetTest, FirstN) {
  EXPECT_EQ(TableSet::FirstN(0).size(), 0);
  EXPECT_EQ(TableSet::FirstN(3).size(), 3);
  EXPECT_EQ(TableSet::FirstN(64).size(), 64);
  EXPECT_TRUE(TableSet::FirstN(17).Contains(16));
  EXPECT_FALSE(TableSet::FirstN(17).Contains(17));
}

TEST(TableSetTest, SetAlgebra) {
  TableSet a = TableSet::Single(1).With(3).With(5);
  TableSet b = TableSet::Single(3).With(7);
  EXPECT_EQ(a.Union(b).size(), 4);
  EXPECT_EQ(a.Intersect(b), TableSet::Single(3));
  EXPECT_EQ(a.Minus(b), TableSet::Single(1).With(5));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(TableSet::Single(0)));
  EXPECT_TRUE(a.ContainsAll(TableSet::Single(1).With(5)));
  EXPECT_FALSE(a.ContainsAll(b));
  EXPECT_EQ(a.Without(3), TableSet::Single(1).With(5));
  EXPECT_EQ(a.Without(2), a);  // removing a non-member is a no-op
}

TEST(TableSetTest, IterationMatchesToVector) {
  TableSet s = TableSet::Single(0).With(7).With(63);
  std::vector<int> from_iter;
  for (int t : s) from_iter.push_back(t);
  EXPECT_EQ(from_iter, s.ToVector());
  EXPECT_EQ(from_iter, (std::vector<int>{0, 7, 63}));
}

TEST(TableSetTest, ToString) {
  EXPECT_EQ(TableSet().ToString(), "{}");
  EXPECT_EQ(TableSet::Single(2).With(4).ToString(), "{2,4}");
}

TEST(TableSetTest, ProperSubsetEnumeration) {
  TableSet s = TableSet::Single(1).With(4).With(9);
  std::set<uint64_t> seen;
  ForEachProperSubset(s, [&](TableSet sub) {
    EXPECT_TRUE(s.ContainsAll(sub));
    EXPECT_NE(sub, s);
    EXPECT_FALSE(sub.empty());
    seen.insert(sub.bits());
  });
  // 2^3 - 2 proper non-empty subsets.
  EXPECT_EQ(seen.size(), 6u);
}

class TableSetSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(TableSetSizeTest, SubsetCountIsTwoToNMinusTwo) {
  int n = GetParam();
  TableSet s = TableSet::FirstN(n);
  int count = 0;
  ForEachProperSubset(s, [&](TableSet) { count++; });
  EXPECT_EQ(count, (1 << n) - 2);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TableSetSizeTest,
                         ::testing::Values(2, 3, 5, 8, 12));

TEST(TableSetTest, HashDistinguishesSets) {
  TableSetHash hash;
  std::set<size_t> hashes;
  for (int i = 0; i < 64; ++i) hashes.insert(hash(TableSet::Single(i)));
  EXPECT_EQ(hashes.size(), 64u);
}

}  // namespace
}  // namespace balsa
