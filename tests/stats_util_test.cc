#include "src/util/stats_util.h"

#include <gtest/gtest.h>

#include "src/util/table_printer.h"

namespace balsa {
namespace {

TEST(StatsUtilTest, MedianOddEven) {
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2);
  EXPECT_DOUBLE_EQ(Median({4, 1, 2, 3}), 2.5);
  EXPECT_DOUBLE_EQ(Median({}), 0);
  EXPECT_DOUBLE_EQ(Median({7}), 7);
}

TEST(StatsUtilTest, MeanAndStdDev) {
  EXPECT_DOUBLE_EQ(Mean({2, 4, 6}), 4);
  EXPECT_DOUBLE_EQ(Mean({}), 0);
  EXPECT_NEAR(StdDev({2, 4, 6}), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(StdDev({5}), 0);
}

TEST(StatsUtilTest, MinMax) {
  EXPECT_DOUBLE_EQ(Min({3, 1, 2}), 1);
  EXPECT_DOUBLE_EQ(Max({3, 1, 2}), 3);
  EXPECT_DOUBLE_EQ(Min({}), 0);
  EXPECT_DOUBLE_EQ(Max({}), 0);
}

TEST(StatsUtilTest, PercentileInterpolates) {
  std::vector<double> v{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 10);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 50);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 30);
  EXPECT_DOUBLE_EQ(Percentile(v, 25), 20);
  EXPECT_DOUBLE_EQ(Percentile(v, 62.5), 35);  // between 30 and 40
}

TEST(StatsUtilTest, PercentileUnsortedInput) {
  EXPECT_DOUBLE_EQ(Percentile({50, 10, 30, 20, 40}, 50), 30);
}

TEST(TablePrinterTest, FmtPrecision) {
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fmt(2.0, 0), "2");
}

}  // namespace
}  // namespace balsa
