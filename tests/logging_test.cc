#include "src/util/logging.h"

#include <gtest/gtest.h>

namespace balsa {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(before);
}

TEST(LoggingTest, MacroCompilesForAllLevels) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);  // suppress output during tests
  BALSA_LOG(kDebug, "debug %d", 1);
  BALSA_LOG(kInfo, "info %s", "x");
  BALSA_LOG(kWarn, "warn %f", 1.5);
  SetLogLevel(before);
}

TEST(LoggingTest, FormatV) {
  EXPECT_EQ(internal::FormatV("%d-%s", 7, "ok"), "7-ok");
  EXPECT_EQ(internal::FormatV("plain"), "plain");
}

TEST(LoggingDeathTest, CheckAbortsOnFailure) {
  EXPECT_DEATH(BALSA_CHECK(false, "boom"), "boom");
}

TEST(LoggingTest, CheckPassesOnSuccess) {
  BALSA_CHECK(true, "never printed");
}

}  // namespace
}  // namespace balsa
