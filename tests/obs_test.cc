// Tests for the obs layer: exactness of the lock-free primitives under
// concurrency, snapshot monotonicity (the documented guarantee of
// MetricsRegistry::Snapshot and PlanCache::Totals), histogram merge
// semantics, deterministic trace sampling, and the global kill switch.
// The concurrent tests double as the TSan stress suite (`ctest -L obs`
// runs in the TSan CI job).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/obs/sampler.h"
#include "src/obs/trace.h"
#include "src/serving/optimizer_server.h"
#include "src/serving/replay_driver.h"
#include "test_util.h"

namespace balsa::obs {
namespace {

// Restores the global kill switch even when an assertion fails mid-test.
struct EnabledGuard {
  ~EnabledGuard() { SetEnabled(true); }
};

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  constexpr int kThreads = 8;
  constexpr int kIncsPerThread = 20000;
  Counter counter;
  Counter weighted;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncsPerThread; ++i) {
        counter.Inc();
        weighted.Inc(3);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), kThreads * kIncsPerThread);
  EXPECT_EQ(weighted.Value(), int64_t{3} * kThreads * kIncsPerThread);
}

TEST(GaugeTest, UpdateMaxKeepsHighWaterMarkUnderContention) {
  constexpr int kThreads = 8;
  constexpr int kValuesPerThread = 10000;
  Gauge gauge;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kValuesPerThread; ++i) {
        gauge.UpdateMax(t * kValuesPerThread + i);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(gauge.Value(), kThreads * kValuesPerThread - 1);
}

TEST(Log2HistogramTest, ConcurrentRecordingMatchesSerialReference) {
  constexpr int kThreads = 8;
  constexpr int kValuesPerThread = 5000;
  auto value_for = [](int t, int i) {
    // A deterministic spread across many buckets.
    return static_cast<double>(((t * kValuesPerThread + i) % 19) * 37 + 1);
  };

  Log2Histogram serial;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kValuesPerThread; ++i) serial.Record(value_for(t, i));
  }

  Log2Histogram concurrent;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kValuesPerThread; ++i) {
        concurrent.Record(value_for(t, i));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(concurrent.Count(), kThreads * kValuesPerThread);
  EXPECT_TRUE(concurrent.Snapshot() == serial.Snapshot());
}

TEST(Log2HistogramTest, MergedHalvesEqualTheWhole) {
  Log2Histogram whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double value = (i % 23) * 11 + 1;
    whole.Record(value);
    (i % 2 == 0 ? left : right).Record(value);
  }
  HistogramData merged = left.Snapshot();
  merged.Merge(right.Snapshot());
  EXPECT_TRUE(merged == whole.Snapshot());
}

// The semantics the serving layer's old LatencyHistogram test pinned:
// log2 buckets separate a microsecond-scale majority from a
// millisecond-scale tail.
TEST(Log2HistogramTest, PercentilesSeparateMicrosFromMillis) {
  Log2Histogram hist;
  for (int i = 0; i < 99; ++i) hist.Record(3.0);
  hist.Record(30000.0);
  EXPECT_EQ(hist.Count(), 100);
  EXPECT_LE(hist.Percentile(50), 8.0);
  EXPECT_GE(hist.Percentile(99.5), 16000.0);
}

TEST(Log2HistogramTest, MeanUsesExactSumNotBuckets) {
  Log2Histogram hist;
  hist.Record(10);
  hist.Record(20);
  hist.Record(30);
  EXPECT_DOUBLE_EQ(hist.Snapshot().Mean(), 20.0);
}

TEST(LabeledTest, FormatsNameWithLabels) {
  EXPECT_EQ(Labeled("serving.request_us", {{"outcome", "hit"}}),
            "serving.request_us{outcome=hit}");
  EXPECT_EQ(Labeled("x", {{"a", "1"}, {"b", "2"}}), "x{a=1,b=2}");
}

TEST(MetricsRegistryTest, SnapshotMergesDuplicateNames) {
  MetricsRegistry registry;
  Counter shard_a, shard_b;
  shard_a.Inc(5);
  shard_b.Inc(7);
  Log2Histogram hist_a, hist_b;
  hist_a.Record(4);
  hist_b.Record(4);
  hist_b.Record(1000);
  Registration r1 = registry.AttachCounter("cache.hits", &shard_a);
  Registration r2 = registry.AttachCounter("cache.hits", &shard_b);
  Registration r3 = registry.AttachHistogram("cache.us", &hist_a);
  Registration r4 = registry.AttachHistogram("cache.us", &hist_b);

  const RegistrySnapshot snapshot = registry.Snapshot();
  const MetricValue* hits = snapshot.Find("cache.hits");
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(hits->kind, MetricKind::kCounter);
  EXPECT_EQ(hits->value, 12);
  const MetricValue* us = snapshot.Find("cache.us");
  ASSERT_NE(us, nullptr);
  EXPECT_EQ(us->kind, MetricKind::kHistogram);
  EXPECT_EQ(us->histogram.count, 3);
}

TEST(MetricsRegistryTest, RegistrationDetachesOnDestruction) {
  MetricsRegistry registry;
  Counter counter;
  counter.Inc();
  {
    Registration r = registry.AttachCounter("scoped", &counter);
    EXPECT_EQ(registry.NumAttached(), 1u);
    EXPECT_NE(registry.Snapshot().Find("scoped"), nullptr);
  }
  EXPECT_EQ(registry.NumAttached(), 0u);
  EXPECT_EQ(registry.Snapshot().Find("scoped"), nullptr);
}

TEST(MetricsRegistryTest, RegistrationSurvivesMove) {
  MetricsRegistry registry;
  Counter counter;
  Registration outer;
  {
    Registration inner = registry.AttachCounter("moved", &counter);
    outer = std::move(inner);
  }
  EXPECT_EQ(registry.NumAttached(), 1u);
  outer.Reset();
  EXPECT_EQ(registry.NumAttached(), 0u);
}

TEST(MetricsRegistryTest, CallbackGaugeReadsAtSnapshotTime) {
  MetricsRegistry registry;
  std::atomic<int64_t> depth{3};
  Registration r = registry.AttachCallbackGauge(
      "pool.queue_depth", [&] { return depth.load(); });
  EXPECT_EQ(registry.Snapshot().Find("pool.queue_depth")->value, 3);
  depth.store(9);
  EXPECT_EQ(registry.Snapshot().Find("pool.queue_depth")->value, 9);
}

// The documented guarantee: snapshots are not atomic cuts, but every
// counter is monotone across snapshots even while writers are running.
// (PlanCache::Totals documents the same contract in terms of this test.)
TEST(MetricsRegistryTest, SnapshotCountersAreMonotoneUnderConcurrentTraffic) {
  constexpr int kWriters = 4;
  constexpr int kSnapshots = 200;
  MetricsRegistry registry;
  std::vector<std::unique_ptr<Counter>> shards;
  std::vector<Registration> registrations;
  for (int i = 0; i < kWriters; ++i) {
    shards.push_back(std::make_unique<Counter>());
    registrations.push_back(
        registry.AttachCounter("traffic.ops", shards.back().get()));
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int i = 0; i < kWriters; ++i) {
    writers.emplace_back([&, i] {
      while (!stop.load(std::memory_order_relaxed)) shards[i]->Inc();
    });
  }

  // Wait for the writers to actually produce traffic before sampling.
  while (registry.Snapshot().Find("traffic.ops")->value == 0) {
    std::this_thread::yield();
  }

  int64_t previous = -1;
  bool monotone = true;
  for (int i = 0; i < kSnapshots; ++i) {
    const RegistrySnapshot snapshot = registry.Snapshot();
    const MetricValue* ops = snapshot.Find("traffic.ops");
    ASSERT_NE(ops, nullptr);
    if (ops->value < previous) monotone = false;
    previous = ops->value;
  }
  stop.store(true);
  for (std::thread& writer : writers) writer.join();
  EXPECT_TRUE(monotone);
  EXPECT_GT(previous, 0);
}

// Attach/detach churn racing recording and snapshots: the TSan stress for
// the registry lock discipline (snapshot copies entries under the lock,
// reads instruments outside it). The churned instrument outlives the loop:
// the Registration contract requires detach to happen before instrument
// death, and a snapshot that copied the entry just before a detach may
// still read the counter afterwards.
TEST(MetricsRegistryTest, AttachDetachChurnUnderConcurrentSnapshots) {
  MetricsRegistry registry;
  Counter stable;
  Registration keep = registry.AttachCounter("stable", &stable);

  std::atomic<bool> stop{false};
  std::thread churn([&] {
    Counter transient;
    while (!stop.load(std::memory_order_relaxed)) {
      transient.Inc();
      Registration r = registry.AttachCounter("transient", &transient);
      (void)registry.Snapshot();
    }
  });
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) stable.Inc();
  });
  for (int i = 0; i < 500; ++i) {
    stable.Inc();
    const RegistrySnapshot snapshot = registry.Snapshot();
    ASSERT_NE(snapshot.Find("stable"), nullptr);
  }
  stop.store(true);
  churn.join();
  writer.join();
  EXPECT_GE(stable.Value(), 500);
}

TEST(KillSwitchTest, DisablesHistogramRecordingAndTraceSampling) {
  EnabledGuard guard;
  Log2Histogram hist;
  RequestTracerOptions options;
  options.sample_every = 1;
  RequestTracer tracer(options);

  SetEnabled(false);
  hist.Record(5);
  EXPECT_EQ(hist.Count(), 0);
  EXPECT_EQ(tracer.MaybeStartTrace(), nullptr);
  EXPECT_EQ(tracer.traces_started(), 0);

  SetEnabled(true);
  hist.Record(5);
  EXPECT_EQ(hist.Count(), 1);
  EXPECT_NE(tracer.MaybeStartTrace(), nullptr);
}

TEST(RequestTracerTest, SamplingIsDeterministicUnderFixedSeed) {
  RequestTracerOptions options;
  options.sample_every = 4;
  options.seed = 2;
  options.max_traces = 1024;

  // Two tracers with identical options sample exactly the same request
  // indices: on one thread, sampling is a pure function of (arrival index,
  // seed). Trace ids encode (arrival k, stripe) as k * kThreadStripes +
  // stripe; id / kThreadStripes recovers the arrival index.
  RequestTracer a(options), b(options);
  std::vector<uint64_t> sampled_a, sampled_b;
  for (int i = 0; i < 64; ++i) {
    if (auto trace = a.MaybeStartTrace()) sampled_a.push_back(trace->id());
    if (auto trace = b.MaybeStartTrace()) sampled_b.push_back(trace->id());
  }
  EXPECT_EQ(sampled_a, sampled_b);
  ASSERT_EQ(sampled_a.size(), 16u);
  for (uint64_t id : sampled_a) {
    EXPECT_EQ((id / kThreadStripes + options.seed) % 4, 0u) << id;
  }
  EXPECT_EQ(a.requests_seen(), 64);
  EXPECT_EQ(a.traces_started(), 16);
}

TEST(RequestTracerTest, SampleEveryZeroDisablesTracing) {
  RequestTracerOptions options;
  options.sample_every = 0;
  RequestTracer tracer(options);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(tracer.MaybeStartTrace(), nullptr);
  EXPECT_EQ(tracer.traces_started(), 0);
  EXPECT_TRUE(tracer.RecentTraces().empty());
}

TEST(RequestTracerTest, RetainedTraceRingIsBounded) {
  RequestTracerOptions options;
  options.sample_every = 1;
  options.max_traces = 4;
  RequestTracer tracer(options);
  for (int i = 0; i < 10; ++i) tracer.MaybeStartTrace();
  const auto traces = tracer.RecentTraces();
  ASSERT_EQ(traces.size(), 4u);
  // Arrival indices (id / kThreadStripes) 6..9 survive: oldest evicted.
  EXPECT_EQ(traces.front()->id() / kThreadStripes, 6u);
  EXPECT_EQ(traces.back()->id() / kThreadStripes, 9u);
}

TEST(SpanTimerTest, InertWithoutContextRecordsWithOne) {
  RequestTracerOptions options;
  options.sample_every = 1;
  RequestTracer tracer(options);

  // No installed context: nothing is recorded anywhere.
  { SpanTimer span(TraceStage::kBeamSearch); }
  EXPECT_EQ(tracer.stage_histogram(TraceStage::kBeamSearch).Count(), 0);

  std::shared_ptr<Trace> trace = tracer.MaybeStartTrace();
  ASSERT_NE(trace, nullptr);
  {
    ScopedTraceContext scope(&tracer, trace);
    { SpanTimer span(TraceStage::kBeamSearch); }
    { SpanTimer span(TraceStage::kInference); }
  }
  // Context uninstalled again: inert once more.
  { SpanTimer span(TraceStage::kBeamSearch); }

  EXPECT_EQ(trace->spans().size(), 2u);
  EXPECT_TRUE(trace->HasStage(TraceStage::kBeamSearch));
  EXPECT_TRUE(trace->HasStage(TraceStage::kInference));
  EXPECT_EQ(trace->NumDistinctStages(), 2);
  EXPECT_EQ(tracer.stage_histogram(TraceStage::kBeamSearch).Count(), 1);
  EXPECT_EQ(tracer.stage_histogram(TraceStage::kInference).Count(), 1);
}

TEST(SpanTimerTest, ConcurrentSpansOnOneTraceAreAllRecorded) {
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 500;
  RequestTracerOptions options;
  options.sample_every = 1;
  RequestTracer tracer(options);
  std::shared_ptr<Trace> trace = tracer.MaybeStartTrace();
  ASSERT_NE(trace, nullptr);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      ScopedTraceContext scope(&tracer, trace);
      for (int i = 0; i < kSpansPerThread; ++i) {
        SpanTimer span(TraceStage::kExecScan);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(trace->spans().size(),
            static_cast<size_t>(kThreads * kSpansPerThread));
  EXPECT_EQ(tracer.stage_histogram(TraceStage::kExecScan).Count(),
            kThreads * kSpansPerThread);
}

TEST(ExportTest, TextAndJsonDumpsContainAttachedMetrics) {
  MetricsRegistry registry;
  Counter requests;
  requests.Inc(42);
  Log2Histogram latency;
  latency.Record(100);
  Registration r1 = registry.AttachCounter("serving.requests", &requests);
  Registration r2 = registry.AttachHistogram("serving.request_us", &latency);

  const RegistrySnapshot snapshot = registry.Snapshot();
  const std::string text = TextDump(snapshot);
  EXPECT_NE(text.find("serving.requests"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_NE(text.find("serving.request_us"), std::string::npos);

  const std::string json = JsonDump(snapshot);
  EXPECT_NE(json.find("\"serving.requests\""), std::string::npos);
  EXPECT_NE(json.find("\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"hist\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":["), std::string::npos);
}

/// Inverse of JsonEscape over its output alphabet (no \uXXXX above 0x1f is
/// ever emitted, so only the short escapes and \u00XX need decoding).
std::string JsonUnescape(const std::string& s) {
  std::string out;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    ++i;
    switch (s[i]) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u':
        out += static_cast<char>(std::stoi(s.substr(i + 1, 4), nullptr, 16));
        i += 4;
        break;
      default: ADD_FAILURE() << "unknown escape \\" << s[i];
    }
  }
  return out;
}

TEST(ExportTest, JsonEscapeRoundTripsHostileStrings) {
  const std::vector<std::string> hostile = {
      "plain",
      "with \"quotes\" inside",
      "back\\slash",
      "line\nbreak\tand\ttabs",
      "control\x01\x1f chars",
      "label{k=\"v\"}",
      std::string("embedded\0nul", 12),
  };
  for (const std::string& s : hostile) {
    const std::string escaped = JsonEscape(s);
    // The escaped form never contains a raw quote, backslash run that
    // breaks a string, or control byte.
    for (char c : escaped) {
      EXPECT_GE(static_cast<unsigned char>(c), 0x20) << "raw control byte";
    }
    EXPECT_EQ(JsonUnescape(escaped), s);
  }
}

TEST(ExportTest, JsonDumpEscapesHostileMetricNames) {
  MetricsRegistry registry;
  Counter counter;
  counter.Inc(7);
  // A label value with quotes and a backslash — the exact shape that used
  // to produce unparseable output.
  const std::string name = "cache.hits{path=\"C:\\temp\"}";
  Registration r = registry.AttachCounter(name, &counter);
  const std::string json = JsonDump(registry.Snapshot());
  EXPECT_NE(json.find("cache.hits{path=\\\"C:\\\\temp\\\"}"),
            std::string::npos)
      << json;
  // Structurally valid: quotes pair up and braces balance outside strings.
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    if (in_string) {
      if (json[i] == '\\') ++i;
      else if (json[i] == '"') in_string = false;
    } else if (json[i] == '"') {
      in_string = true;
    } else if (json[i] == '{' || json[i] == '[') {
      ++depth;
    } else if (json[i] == '}' || json[i] == ']') {
      ASSERT_GE(--depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

// --- TimeSeriesSampler ---------------------------------------------------

TEST(SamplerTest, ManualSamplesDeriveRatesAndWindowMeans) {
  MetricsRegistry registry;
  Counter requests;
  Log2Histogram latency;
  Registration r1 = registry.AttachCounter("serving.requests", &requests);
  Registration r2 = registry.AttachHistogram("serving.request_us", &latency);

  TimeSeriesSampler sampler(&registry);
  sampler.SampleOnce();
  requests.Inc(500);
  latency.Record(100);
  latency.Record(300);
  sampler.SampleOnce();

  EXPECT_EQ(sampler.samples_taken(), 2);
  SeriesWindow counter_series = sampler.GetSeries("serving.requests");
  ASSERT_EQ(counter_series.points.size(), 2u);
  EXPECT_EQ(counter_series.points.back().value -
                counter_series.points.front().value,
            500);
  EXPECT_GT(counter_series.RatePerSec(), 0);

  // Histogram series carry (count, sum): the window mean is the mean of
  // what landed between the two samples.
  SeriesWindow hist_series = sampler.GetSeries("serving.request_us");
  ASSERT_EQ(hist_series.points.size(), 2u);
  EXPECT_DOUBLE_EQ(hist_series.WindowMean(), 200.0);

  EXPECT_TRUE(sampler.GetSeries("absent").points.empty());
}

TEST(SamplerTest, RingRetainsOnlyTheConfiguredWindow) {
  MetricsRegistry registry;
  Counter c;
  Registration r = registry.AttachCounter("c", &c);
  TimeSeriesSamplerOptions options;
  options.ring_capacity = 4;
  TimeSeriesSampler sampler(&registry, options);
  for (int i = 0; i < 10; ++i) {
    c.Inc();
    sampler.SampleOnce();
  }
  SeriesWindow series = sampler.GetSeries("c");
  ASSERT_EQ(series.points.size(), 4u);
  // Oldest retained point is sample 7 of 10 (values 7..10 survive).
  EXPECT_EQ(series.points.front().value, 7);
  EXPECT_EQ(series.points.back().value, 10);
}

TEST(SamplerTest, BackgroundThreadSamplesConcurrentlyWithWriters) {
  MetricsRegistry registry;
  Counter c;
  Log2Histogram h;
  Registration r1 = registry.AttachCounter("writes", &c);
  Registration r2 = registry.AttachHistogram("write_us", &h);

  TimeSeriesSamplerOptions options;
  options.interval_ms = 1;
  TimeSeriesSampler sampler(&registry, options);
  EXPECT_FALSE(sampler.running());
  sampler.Start();
  EXPECT_TRUE(sampler.running());

  // Writers hammer the instruments while the sampler thread snapshots them
  // (the TSan job proves this pairing race-free).
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < 20000; ++i) {
        c.Inc();
        h.Record(i % 1024);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  sampler.Stop();
  EXPECT_FALSE(sampler.running());
  const int64_t taken = sampler.samples_taken();
  EXPECT_GE(taken, 1);
  sampler.SampleOnce();  // close the window after the writers finish
  EXPECT_EQ(sampler.samples_taken(), taken + 1);

  SeriesWindow series = sampler.GetSeries("writes");
  ASSERT_GE(series.points.size(), 2u);
  EXPECT_EQ(series.points.back().value, 4 * 20000);

  // Stop is idempotent and Start/Stop can cycle.
  sampler.Stop();
  sampler.Start();
  sampler.Stop();
}

// The acceptance bar for the sampler's derived rates: two samples
// bracketing a closed-loop replay must reproduce the driver's own measured
// QPS within 10%. The server plans every request from scratch (cache off)
// so per-request work dwarfs the fixed bracketing overhead the sampler's
// window adds over the driver's wall clock.
TEST(SamplerTest, BracketedRateMatchesReplayDriverQps) {
  balsa::testing::StarFixture fixture = balsa::testing::MakeStarFixture();
  Featurizer featurizer(&fixture.schema(), fixture.estimator.get());
  ValueNetConfig config;
  config.query_dim = featurizer.query_dim();
  config.node_dim = featurizer.node_dim();
  config.tree_hidden1 = 16;
  config.tree_hidden2 = 8;
  config.mlp_hidden = 8;
  config.init_seed = 11;
  ValueNetwork network(config);

  MetricsRegistry registry;
  OptimizerServerOptions options;
  options.planner.beam_size = 5;
  options.planner.top_k = 2;
  options.cache.shard_capacity = 0;  // every request pays a beam search
  options.coalesce_misses = false;
  options.metrics = &registry;
  OptimizerServer server(&fixture.schema(), &featurizer, &network,
                         fixture.oracle.get(), options);

  std::vector<Query> variants;
  for (int region = 0; region < 6; ++region) {
    QueryBuilder builder(&fixture.schema(), "v" + std::to_string(region));
    auto query = builder.From("sales", "s")
                     .From("customer", "c")
                     .From("product", "p")
                     .JoinEq("s.customer_id", "c.id")
                     .JoinEq("s.product_id", "p.id")
                     .Filter("c.region", PredOp::kEq, region)
                     .Build();
    ASSERT_TRUE(query.ok());
    variants.push_back(std::move(query).value());
    variants.back().set_id(region);
  }
  std::vector<const Query*> workload;
  for (const Query& q : variants) workload.push_back(&q);

  ReplayOptions replay;
  replay.num_clients = 4;
  replay.requests_per_client = 150;
  replay.zipf_s = 0.9;
  replay.seed = 3;

  TimeSeriesSampler sampler(&registry);
  sampler.SampleOnce();
  auto report = ReplayWorkload(&server, workload, replay);
  sampler.SampleOnce();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_GT(report->requests_per_sec, 0);

  const double sampled_qps =
      sampler.GetSeries("serving.requests").RatePerSec();
  ASSERT_GT(sampled_qps, 0);
  EXPECT_NEAR(sampled_qps / report->requests_per_sec, 1.0, 0.10)
      << "sampled " << sampled_qps << " vs driver "
      << report->requests_per_sec;
}

}  // namespace
}  // namespace balsa::obs
