// The change stream: database mutation semantics, streaming sketch
// accounting (counts, min/max, HLL distinct, anchored bucket/MCV deltas),
// anchor rebasing, and order-independence of sketch state.
#include "src/storage/change_log.h"

#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/hll.h"
#include "src/util/logging.h"

namespace balsa {
namespace {

Schema TwoColumnSchema(int64_t rows = 6) {
  Schema schema;
  ColumnDef id;
  id.name = "id";
  id.kind = ColumnKind::kPrimaryKey;
  ColumnDef v;
  v.name = "v";
  v.kind = ColumnKind::kAttribute;
  EXPECT_TRUE(schema.AddTable({"t", rows, {id, v}}).ok());
  return schema;
}

std::unique_ptr<Database> SmallDb() {
  auto db = std::make_unique<Database>(TwoColumnSchema());
  TableData data;
  data.row_count = 6;
  data.columns = {{0, 1, 2, 3, 4, 5}, {10, 20, 30, 40, 50, 60}};
  EXPECT_TRUE(db->SetTableData(0, std::move(data)).ok());
  return db;
}

TEST(DatabaseMutationTest, AppendRemoveAndSetValue) {
  auto db = SmallDb();
  ASSERT_TRUE(db->AppendRows(0, {{6, 70}, {7, 80}}).ok());
  EXPECT_EQ(db->row_count(0), 8);
  EXPECT_EQ(db->GetTableVersion(0)->column(1)[7], 80);

  // Swap-remove: deleting rows 0 and 2 pulls tail rows into the holes.
  ASSERT_TRUE(db->RemoveRows(0, {0, 2}).ok());
  EXPECT_EQ(db->row_count(0), 6);
  // Every surviving value is still present exactly once.
  std::vector<int64_t> ids = db->CopyTableData(0).columns[0];
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<int64_t>{1, 3, 4, 5, 6, 7}));

  ASSERT_TRUE(db->SetValue(0, 1, 0, 99).ok());
  EXPECT_EQ(db->GetTableVersion(0)->column(1)[0], 99);

  EXPECT_FALSE(db->RemoveRows(0, {100}).ok());
  EXPECT_FALSE(db->RemoveRows(0, {1, 1}).ok());
  EXPECT_FALSE(db->AppendRows(0, {{1}}).ok());  // wrong arity
}

TEST(DatabaseMutationTest, RemoveLastRowAndAllRows) {
  auto db = SmallDb();
  // Deleting the last row is the degenerate swap-remove (row swaps with
  // itself).
  ASSERT_TRUE(db->RemoveRows(0, {5}).ok());
  EXPECT_EQ(db->row_count(0), 5);
  std::vector<int64_t> ids = db->CopyTableData(0).columns[0];
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<int64_t>{0, 1, 2, 3, 4}));

  // Deleting every remaining row empties the table but keeps its width.
  ASSERT_TRUE(db->RemoveRows(0, {0, 1, 2, 3, 4}).ok());
  EXPECT_EQ(db->row_count(0), 0);
  EXPECT_FALSE(db->HasData(0));
  EXPECT_EQ(db->GetTableVersion(0)->num_columns(), 2);
  EXPECT_FALSE(db->RemoveRows(0, {0}).ok());  // nothing left to delete

  // The emptied table accepts appends again.
  ASSERT_TRUE(db->AppendRows(0, {{42, 43}}).ok());
  EXPECT_EQ(db->row_count(0), 1);
  EXPECT_EQ(db->GetTableVersion(0)->column(1)[0], 43);
}

TEST(DatabaseMutationTest, AppendToNeverInstalledTableMaterializesColumns) {
  // Regression: with no SetTableData, the table used to have zero
  // materialized columns, so zero-width rows were accepted and row_count
  // grew with no backing data. Appends must validate against the schema's
  // width and materialize real columns.
  Database db(TwoColumnSchema());
  EXPECT_FALSE(db.AppendRows(0, {{}}).ok());       // zero-width row
  EXPECT_FALSE(db.AppendRows(0, {{1}}).ok());      // wrong arity
  EXPECT_EQ(db.row_count(0), 0);
  ASSERT_TRUE(db.AppendRows(0, {{0, 10}, {1, 20}}).ok());
  EXPECT_EQ(db.row_count(0), 2);
  ASSERT_EQ(db.GetTableVersion(0)->num_columns(), 2);
  EXPECT_EQ(db.GetTableVersion(0)->column(1)[1], 20);
}

TEST(DatabaseMutationTest, RejectedRemoveLeavesTableUntouched) {
  auto db = SmallDb();
  std::vector<int64_t> before = db->CopyTableData(0).columns[0];
  // Mix of one valid and one invalid id: nothing may be removed.
  EXPECT_FALSE(db->RemoveRows(0, {0, -1}).ok());
  EXPECT_FALSE(db->RemoveRows(0, {0, 100}).ok());
  EXPECT_FALSE(db->RemoveRows(0, {0, 0}).ok());
  EXPECT_EQ(db->row_count(0), 6);
  EXPECT_EQ(db->CopyTableData(0).columns[0], before);
}

TEST(DatabaseMutationTest, PinnedSnapshotSurvivesMutations) {
  auto db = SmallDb();
  Snapshot before = db->GetSnapshot();
  const HashIndex& index_before = before.index(0, 1);
  EXPECT_EQ(index_before.Lookup(70).size(), 0u);

  ASSERT_TRUE(db->AppendRows(0, {{6, 70}}).ok());
  ASSERT_TRUE(db->SetValue(0, 1, 0, 99).ok());

  // The pinned snapshot still reads (and indexes) the pre-mutation data.
  EXPECT_EQ(before.row_count(0), 6);
  EXPECT_EQ(before.column(0, 1)[0], 10);
  EXPECT_EQ(before.index(0, 1).Lookup(70).size(), 0u);
  // A fresh snapshot sees the new version, with a fresh lazy index.
  Snapshot after = db->GetSnapshot();
  EXPECT_GT(after.epoch(), before.epoch());
  EXPECT_EQ(after.row_count(0), 7);
  EXPECT_EQ(after.column(0, 1)[0], 99);
  EXPECT_EQ(after.index(0, 1).Lookup(70).size(), 1u);
}

TEST(DatabaseMutationTest, SingleColumnUpdateSharesUnchangedColumns) {
  auto db = SmallDb();
  Snapshot before = db->GetSnapshot();
  ASSERT_TRUE(db->SetValues(0, 1, {{0, 99}, {1, 98}}).ok());
  Snapshot after = db->GetSnapshot();
  // Copy-on-write at column granularity: column 0 is the same allocation.
  EXPECT_EQ(&before.column(0, 0), &after.column(0, 0));
  EXPECT_NE(&before.column(0, 1), &after.column(0, 1));
}

TEST(HashIndexTest, NegativeValuesAreIndexed) {
  // Regression: the index used to skip every value < 0 as "NULL", but only
  // -1 is NULL — SetValues may write arbitrary negatives, and they must be
  // findable or index-assisted reads drop matching rows.
  auto db = SmallDb();
  ASSERT_TRUE(db->SetValues(0, 1, {{2, -5}, {4, -5}, {5, -1}}).ok());
  Snapshot snap = db->GetSnapshot();
  const HashIndex& index = snap.index(0, 1);
  ASSERT_EQ(index.Lookup(-5).size(), 2u);
  EXPECT_EQ(index.Lookup(-5)[0], 2u);
  EXPECT_EQ(index.Lookup(-5)[1], 4u);
  EXPECT_TRUE(index.Lookup(-1).empty());  // NULL stays unindexed
}

TEST(ChangeLogTest, InsertSketchTracksCountsMinMaxAndDistinct) {
  auto db = SmallDb();
  ChangeLog log(db.get());
  std::vector<std::vector<int64_t>> rows;
  for (int64_t i = 0; i < 200; ++i) rows.push_back({6 + i, 100 + (i % 50)});
  rows.push_back({900, -1});  // NULL attribute
  ASSERT_TRUE(log.InsertRows(0, rows).ok());

  TableDelta delta = log.Snapshot(0);
  EXPECT_EQ(delta.rows_inserted, 201);
  EXPECT_EQ(delta.epoch, 1);
  const ColumnDeltaSketch& v = delta.columns[1];
  EXPECT_EQ(v.inserted, 200);
  EXPECT_EQ(v.inserted_nulls, 1);
  EXPECT_EQ(v.min_inserted, 100);
  EXPECT_EQ(v.max_inserted, 149);
  // 50 distinct values; the 256-register HLL is well within 20% here.
  EXPECT_NEAR(v.distinct_inserted.Estimate(), 50.0, 10.0);
}

TEST(ChangeLogTest, AnchoredBucketAndMcvAttribution) {
  auto db = SmallDb();
  ChangeLog log(db.get());
  TableAnchor anchor;
  anchor.base_row_count = 6;
  anchor.columns.resize(2);
  anchor.columns[1].histogram_bounds = {10, 20, 30};  // 2 buckets
  anchor.columns[1].mcv_values = {25};
  log.SetAnchor(0, anchor);

  ASSERT_TRUE(log.InsertRows(0, {{6, 5},     // below bounds
                                 {7, 15},    // bucket [10,20]
                                 {8, 25},    // MCV, not a bucket
                                 {9, 27},    // bucket [20,30]
                                 {10, 99}})  // above bounds
                  .ok());
  TableDelta delta = log.Snapshot(0);
  const ColumnDeltaSketch& v = delta.columns[1];
  ASSERT_EQ(v.bucket_inserts.size(), 4u);  // below, 2 buckets, above
  EXPECT_EQ(v.bucket_inserts[0], 1);
  EXPECT_EQ(v.bucket_inserts[1], 1);
  EXPECT_EQ(v.bucket_inserts[2], 1);
  EXPECT_EQ(v.bucket_inserts[3], 1);
  ASSERT_EQ(v.mcv_inserts.size(), 1u);
  EXPECT_EQ(v.mcv_inserts[0], 1);

  // Delete the row holding value 15: its mass leaves bucket 1.
  ASSERT_TRUE(log.DeleteRows(0, {7}).ok());
  delta = log.Snapshot(0);
  EXPECT_EQ(delta.rows_deleted, 1);
  EXPECT_EQ(delta.columns[1].bucket_deletes[1], 1);
}

TEST(ChangeLogTest, RejectedDeleteLeavesSketchesClean) {
  auto db = SmallDb();
  ChangeLog log(db.get());
  EXPECT_FALSE(log.DeleteRows(0, {1, 1}).ok());   // duplicate
  EXPECT_FALSE(log.DeleteRows(0, {0, 99}).ok());  // out of range
  TableDelta delta = log.Snapshot(0);
  EXPECT_EQ(delta.epoch, 0);
  EXPECT_EQ(delta.rows_deleted, 0);
  EXPECT_EQ(delta.columns[1].deleted, 0);  // no phantom deletions
  EXPECT_EQ(db->row_count(0), 6);
}

TEST(ChangeLogTest, UpdateRecordsBothSides) {
  auto db = SmallDb();
  ChangeLog log(db.get());
  ASSERT_TRUE(log.UpdateValues(0, 1, {{0, 77}, {1, 88}}).ok());
  TableDelta delta = log.Snapshot(0);
  EXPECT_EQ(delta.rows_updated, 2);
  EXPECT_EQ(delta.columns[1].inserted, 2);  // new values
  EXPECT_EQ(delta.columns[1].deleted, 2);   // old values
  EXPECT_EQ(db->GetTableVersion(0)->column(1)[0], 77);
  EXPECT_EQ(db->GetTableVersion(0)->column(1)[1], 88);
}

TEST(ChangeLogTest, RebaseHandsOutDeltaInstallsAnchorAndResets) {
  auto db = SmallDb();
  ChangeLog log(db.get());
  ASSERT_TRUE(log.InsertRows(0, {{6, 70}}).ok());

  Status status = log.Rebase(0, [&](const TableDelta& delta,
                                    const TableAnchor& old_anchor,
                                    const Snapshot& snapshot) {
    EXPECT_EQ(delta.rows_inserted, 1);
    EXPECT_EQ(old_anchor.base_row_count, 6);
    // The pinned snapshot holds exactly the data the delta describes.
    EXPECT_EQ(snapshot.row_count(0), 7);
    TableAnchor next;
    next.base_row_count = snapshot.row_count(0);
    next.stats_version = 3;
    next.columns.resize(2);
    return StatusOr<TableAnchor>(std::move(next));
  });
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(log.anchor(0).base_row_count, 7);
  EXPECT_EQ(log.anchor(0).stats_version, 3);
  EXPECT_EQ(log.Snapshot(0).epoch, 0);  // delta reset

  // A failing reanalyze leaves anchor and delta untouched.
  ASSERT_TRUE(log.InsertRows(0, {{7, 71}}).ok());
  status = log.Rebase(0, [](const TableDelta&, const TableAnchor&,
                            const Snapshot&) {
    return StatusOr<TableAnchor>(Status::Internal("boom"));
  });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(log.Snapshot(0).rows_inserted, 1);
  EXPECT_EQ(log.anchor(0).stats_version, 3);
}

TEST(ChangeLogTest, IngestDuringRebaseIsNotBlockedAndSurvivesIt) {
  // The old contract held the ingest lock across the re-ANALYZE, so this
  // test would deadlock: the callback itself ingests a batch. Now the
  // callback runs unlocked; the mid-rebase batch is buffered raw and
  // replayed into the fresh delta against the NEW anchor.
  auto db = SmallDb();
  ChangeLog log(db.get());
  ASSERT_TRUE(log.InsertRows(0, {{6, 70}}).ok());

  Status status = log.Rebase(0, [&](const TableDelta& delta,
                                    const TableAnchor&, const Snapshot& snap) {
    EXPECT_EQ(delta.rows_inserted, 1);
    EXPECT_EQ(snap.row_count(0), 7);  // pinned BEFORE the racing batch
    // A writer streams in while the "rescan" runs.
    EXPECT_TRUE(log.InsertRows(0, {{7, 25}}).ok());
    EXPECT_TRUE(log.UpdateValues(0, 1, {{0, 15}}).ok());
    TableAnchor next;
    next.base_row_count = snap.row_count(0);
    next.stats_version = 1;
    next.columns.resize(2);
    next.columns[1].histogram_bounds = {10, 20, 30};  // 2 buckets
    next.columns[1].mcv_values = {25};
    return StatusOr<TableAnchor>(std::move(next));
  });
  ASSERT_TRUE(status.ok());

  // The post-rebase delta describes exactly the mid-rebase mutations,
  // attributed against the NEW anchor's buckets/MCVs.
  TableDelta delta = log.Snapshot(0);
  EXPECT_EQ(delta.rows_inserted, 1);
  EXPECT_EQ(delta.rows_updated, 1);
  EXPECT_EQ(delta.epoch, 2);
  const ColumnDeltaSketch& v = delta.columns[1];
  EXPECT_EQ(v.inserted, 2);  // 25 (insert) + 15 (update's new value)
  EXPECT_EQ(v.deleted, 1);   // 10 (update's old value)
  ASSERT_EQ(v.mcv_inserts.size(), 1u);
  EXPECT_EQ(v.mcv_inserts[0], 1);       // the 25 hit the new anchor's MCV
  ASSERT_EQ(v.bucket_inserts.size(), 4u);
  EXPECT_EQ(v.bucket_inserts[1], 1);    // the 15 landed in [10, 20]
  EXPECT_EQ(v.bucket_deletes[1], 1);    // the removed 10, same bucket
  EXPECT_EQ(db->row_count(0), 8);

  // A failing rebase keeps the old anchor, and the mid-rebase mutations
  // are already in the live delta — nothing is lost or double-counted.
  status = log.Rebase(0, [&](const TableDelta&, const TableAnchor&,
                             const Snapshot&) {
    EXPECT_TRUE(log.InsertRows(0, {{8, 26}}).ok());
    return StatusOr<TableAnchor>(Status::Internal("boom"));
  });
  EXPECT_FALSE(status.ok());
  delta = log.Snapshot(0);
  EXPECT_EQ(delta.rows_inserted, 2);  // 25 earlier + 26 during the failure
  EXPECT_EQ(log.anchor(0).stats_version, 1);
}

TEST(ChangeLogTest, ListenersFireAfterEveryBatch) {
  auto db = SmallDb();
  ChangeLog log(db.get());
  int calls = 0;
  log.AddListener([&](int table) {
    EXPECT_EQ(table, 0);
    calls++;
  });
  ASSERT_TRUE(log.InsertRows(0, {{6, 70}}).ok());
  ASSERT_TRUE(log.UpdateValues(0, 1, {{0, 1}}).ok());
  ASSERT_TRUE(log.DeleteRows(0, {0}).ok());
  EXPECT_EQ(calls, 3);
}

TEST(ChangeLogTest, RemovedListenersStopFiring) {
  auto db = SmallDb();
  ChangeLog log(db.get());
  int first = 0, second = 0;
  int id = log.AddListener([&](int) { first++; });
  log.AddListener([&](int) { second++; });
  ASSERT_TRUE(log.InsertRows(0, {{6, 70}}).ok());
  log.RemoveListener(id);
  ASSERT_TRUE(log.InsertRows(0, {{7, 71}}).ok());
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 2);
}

TEST(ChangeLogTest, SketchStateIsIngestOrderIndependent) {
  // The same multiset of mutations in two different batch splits must yield
  // identical sketches — the drift bench's thread-count-invariance gate.
  auto MakeRows = [](int64_t lo, int64_t hi) {
    std::vector<std::vector<int64_t>> rows;
    for (int64_t i = lo; i < hi; ++i) rows.push_back({i, (i * 7) % 40});
    return rows;
  };
  auto db_a = SmallDb();
  ChangeLog log_a(db_a.get());
  ASSERT_TRUE(log_a.InsertRows(0, MakeRows(6, 106)).ok());

  auto db_b = SmallDb();
  ChangeLog log_b(db_b.get());
  ASSERT_TRUE(log_b.InsertRows(0, MakeRows(6, 30)).ok());
  ASSERT_TRUE(log_b.InsertRows(0, MakeRows(30, 80)).ok());
  ASSERT_TRUE(log_b.InsertRows(0, MakeRows(80, 106)).ok());

  TableDelta a = log_a.Snapshot(0);
  TableDelta b = log_b.Snapshot(0);
  EXPECT_EQ(a.rows_inserted, b.rows_inserted);
  for (size_t c = 0; c < a.columns.size(); ++c) {
    EXPECT_EQ(a.columns[c].inserted, b.columns[c].inserted);
    EXPECT_EQ(a.columns[c].min_inserted, b.columns[c].min_inserted);
    EXPECT_EQ(a.columns[c].max_inserted, b.columns[c].max_inserted);
    EXPECT_TRUE(a.columns[c].distinct_inserted ==
                b.columns[c].distinct_inserted);
  }
}

TEST(ChangeLogTest, ConcurrentWritersOnDistinctTablesAreSafe) {
  Schema schema;
  ColumnDef id;
  id.name = "id";
  id.kind = ColumnKind::kPrimaryKey;
  ASSERT_TRUE(schema.AddTable({"a", 1, {id}}).ok());
  ASSERT_TRUE(schema.AddTable({"b", 1, {id}}).ok());
  Database db(schema);
  ASSERT_TRUE(db.SetTableData(0, {{{0}}, 1}).ok());
  ASSERT_TRUE(db.SetTableData(1, {{{0}}, 1}).ok());
  ChangeLog log(&db);

  constexpr int kBatches = 50;
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kBatches; ++i) {
        BALSA_CHECK(log.InsertRows(t, {{100 + i}}).ok(), "insert");
      }
    });
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(log.Snapshot(0).rows_inserted, kBatches);
  EXPECT_EQ(log.Snapshot(1).rows_inserted, kBatches);
  EXPECT_EQ(db.row_count(0), 1 + kBatches);
  EXPECT_EQ(db.row_count(1), 1 + kBatches);
}

}  // namespace
}  // namespace balsa
