// Shared fixtures: a small 4-table star schema with generated data, plus
// helpers to build queries against it. Kept deliberately tiny so unit tests
// run in milliseconds; integration tests that need the full JOB-like
// environment use MakeEnv with a small data_scale instead.
#pragma once

#include <memory>

#include "src/catalog/schema.h"
#include "src/plan/query_builder.h"
#include "src/stats/card_oracle.h"
#include "src/stats/cardinality_estimator.h"
#include "src/stats/table_stats.h"
#include "src/storage/column_store.h"
#include "src/storage/data_generator.h"
#include "src/util/logging.h"

namespace balsa::testing {

/// Star schema: fact "sales" -> dims "customer", "product", "store".
inline Schema MakeStarSchema(int64_t fact_rows = 4000) {
  Schema schema;
  auto pk = [](const char* name) {
    ColumnDef c;
    c.name = name;
    c.kind = ColumnKind::kPrimaryKey;
    return c;
  };
  auto fk = [](const char* name, const char* ref, double skew) {
    ColumnDef c;
    c.name = name;
    c.kind = ColumnKind::kForeignKey;
    c.ref_table = ref;
    c.ref_column = "id";
    c.zipf_skew = skew;
    return c;
  };
  auto attr = [](const char* name, int64_t domain, double skew) {
    ColumnDef c;
    c.name = name;
    c.kind = ColumnKind::kAttribute;
    c.domain_size = domain;
    c.zipf_skew = skew;
    return c;
  };
  BALSA_CHECK(schema.AddTable({"customer", 400,
                               {pk("id"), attr("region", 10, 0.8),
                                attr("segment", 4, 0.0)}}).ok(),
              "add customer");
  BALSA_CHECK(schema.AddTable({"product", 200,
                               {pk("id"), attr("category", 8, 0.5)}}).ok(),
              "add product");
  BALSA_CHECK(schema.AddTable({"store", 50, {pk("id"), attr("state", 5, 0.0)}})
                  .ok(),
              "add store");
  BALSA_CHECK(schema.AddTable({"sales", fact_rows,
                               {pk("id"), fk("customer_id", "customer", 0.7),
                                fk("product_id", "product", 0.9),
                                fk("store_id", "store", 0.3),
                                attr("amount", 100, 0.4)}}).ok(),
              "add sales");
  BALSA_CHECK(
      schema.AddForeignKey("sales", "customer_id", "customer", "id").ok(),
      "fk customer");
  BALSA_CHECK(
      schema.AddForeignKey("sales", "product_id", "product", "id").ok(),
      "fk product");
  BALSA_CHECK(schema.AddForeignKey("sales", "store_id", "store", "id").ok(),
              "fk store");
  return schema;
}

/// A populated star database with stats, oracle, and estimator.
struct StarFixture {
  std::unique_ptr<Database> db;
  std::unique_ptr<CardOracle> oracle;
  std::shared_ptr<CardinalityEstimator> estimator;

  const Schema& schema() const { return db->schema(); }
};

inline StarFixture MakeStarFixture(uint64_t seed = 42,
                                   int64_t fact_rows = 4000) {
  StarFixture f;
  f.db = std::make_unique<Database>(MakeStarSchema(fact_rows));
  DataGeneratorOptions gen;
  gen.seed = seed;
  BALSA_CHECK(GenerateData(f.db.get(), gen).ok(), "generate");
  f.oracle = std::make_unique<CardOracle>(f.db.get());
  auto stats = Analyze(*f.db);
  BALSA_CHECK(stats.ok(), "analyze");
  f.estimator = std::make_shared<CardinalityEstimator>(
      &f.db->schema(), std::move(stats).value());
  return f;
}

/// The canonical 4-way star join with a couple of filters.
inline Query MakeStarQuery(const Schema& schema, int id = 0) {
  QueryBuilder builder(&schema, "star4");
  auto query =
      builder.From("sales", "s")
          .From("customer", "c")
          .From("product", "p")
          .From("store", "st")
          .JoinEq("s.customer_id", "c.id")
          .JoinEq("s.product_id", "p.id")
          .JoinEq("s.store_id", "st.id")
          .Filter("c.region", PredOp::kEq, 2)
          .Filter("p.category", PredOp::kLt, 5)
          .Build();
  BALSA_CHECK(query.ok(), "star query");
  Query q = std::move(query).value();
  q.set_id(id);
  return q;
}

}  // namespace balsa::testing
