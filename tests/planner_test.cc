#include "src/balsa/planner.h"

#include <set>

#include <gtest/gtest.h>

#include "src/baselines/random_planner.h"
#include "test_util.h"

namespace balsa {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest()
      : fixture_(testing::MakeStarFixture()),
        query_(testing::MakeStarQuery(fixture_.schema())),
        featurizer_(&fixture_.schema(), fixture_.estimator.get()) {
    ValueNetConfig config;
    config.query_dim = featurizer_.query_dim();
    config.node_dim = featurizer_.node_dim();
    config.tree_hidden1 = 16;
    config.tree_hidden2 = 8;
    config.mlp_hidden = 8;
    config.init_seed = 11;
    network_ = std::make_unique<ValueNetwork>(config);
  }

  BeamSearchPlanner MakePlanner(PlannerOptions options = {}) {
    return BeamSearchPlanner(&fixture_.schema(), &featurizer_,
                             network_.get(), options);
  }

  testing::StarFixture fixture_;
  Query query_;
  Featurizer featurizer_;
  std::unique_ptr<ValueNetwork> network_;
};

TEST_F(PlannerTest, ReturnsKDistinctValidPlans) {
  PlannerOptions options;
  options.beam_size = 10;
  options.top_k = 5;
  auto result = MakePlanner(options).TopK(query_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->plans.size(), 5u);
  std::set<uint64_t> fingerprints;
  for (const auto& scored : result->plans) {
    EXPECT_TRUE(scored.plan.Validate());
    EXPECT_EQ(scored.plan.RootTables(), query_.AllTables());
    fingerprints.insert(scored.plan.Fingerprint());
  }
  EXPECT_EQ(fingerprints.size(), 5u);  // distinct plans
  EXPECT_GT(result->network_evals, 0);
}

TEST_F(PlannerTest, PlansSortedByPredictedLatency) {
  auto result = MakePlanner().TopK(query_);
  ASSERT_TRUE(result.ok());
  for (size_t i = 1; i < result->plans.size(); ++i) {
    EXPECT_LE(result->plans[i - 1].predicted_ms,
              result->plans[i].predicted_ms);
  }
}

TEST_F(PlannerTest, LeftDeepModeProducesLeftDeepPlans) {
  PlannerOptions options;
  options.bushy = false;
  auto result = MakePlanner(options).TopK(query_);
  ASSERT_TRUE(result.ok());
  for (const auto& scored : result->plans) {
    EXPECT_TRUE(scored.plan.IsLeftDeep())
        << scored.plan.ToString(query_);
  }
}

TEST_F(PlannerTest, OperatorTogglesRespected) {
  PlannerOptions options;
  options.enable_merge_join = false;
  options.enable_nl_join = false;
  options.enable_index_nl_join = false;
  auto result = MakePlanner(options).TopK(query_);
  ASSERT_TRUE(result.ok());
  for (const auto& scored : result->plans) {
    std::vector<int> joins, scans;
    scored.plan.CountOps(&joins, &scans);
    EXPECT_EQ(joins[static_cast<int>(JoinOp::kMergeJoin)], 0);
    EXPECT_EQ(joins[static_cast<int>(JoinOp::kNLJoin)], 0);
    EXPECT_EQ(joins[static_cast<int>(JoinOp::kIndexNLJoin)], 0);
  }
}

TEST_F(PlannerTest, SingleRelationQueryShortCircuits) {
  QueryBuilder b(&fixture_.schema(), "one");
  auto q = b.From("customer", "c").Filter("c.region", PredOp::kEq, 1).Build();
  ASSERT_TRUE(q.ok());
  q->set_id(5);
  auto result = MakePlanner().TopK(*q);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->plans.size(), 1u);
  EXPECT_EQ(result->plans[0].plan.NumJoins(), 0);
}

TEST_F(PlannerTest, EpsilonCollapseRequiresRng) {
  PlannerOptions options;
  options.epsilon_collapse = 0.5;
  auto result = MakePlanner(options).TopK(query_, nullptr);
  EXPECT_FALSE(result.ok());
  Rng rng(1);
  auto with_rng = MakePlanner(options).TopK(query_, &rng);
  EXPECT_TRUE(with_rng.ok());
}

TEST_F(PlannerTest, GreedyBeamStillFindsPlans) {
  PlannerOptions options;
  options.beam_size = 1;  // degenerates into greedy search (§8.3.5)
  options.top_k = 1;
  auto result = MakePlanner(options).TopK(query_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plans.size(), 1u);
  EXPECT_TRUE(result->plans[0].plan.Validate());
}

class BeamParamTest
    : public PlannerTest,
      public ::testing::WithParamInterface<std::tuple<int, int>> {};

TEST_P(BeamParamTest, AllSettingsProduceCompletePlans) {
  auto [b, k] = GetParam();
  PlannerOptions options;
  options.beam_size = b;
  options.top_k = k;
  auto result = MakePlanner(options).TopK(query_);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(static_cast<int>(result->plans.size()), 1);
  EXPECT_LE(static_cast<int>(result->plans.size()), k);
  for (const auto& scored : result->plans) {
    EXPECT_EQ(scored.plan.RootTables(), query_.AllTables());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BeamParamTest,
    ::testing::Values(std::make_tuple(1, 1), std::make_tuple(5, 1),
                      std::make_tuple(5, 5), std::make_tuple(10, 10),
                      std::make_tuple(20, 10)));

TEST_F(PlannerTest, GuidedByNetworkScores) {
  // Train the network to hate NL joins on full random plans (including
  // every subplan): the planner should then avoid them everywhere.
  RandomPlanner random(&fixture_.schema());
  std::vector<TrainingPoint> data;
  Rng rng(2);
  for (int i = 0; i < 150; ++i) {
    auto plan = random.Sample(query_, &rng);
    ASSERT_TRUE(plan.ok());
    std::vector<int> joins, scans;
    plan->CountOps(&joins, &scans);
    double label =
        10.0 + 5000.0 * joins[static_cast<int>(JoinOp::kNLJoin)];
    for (int node = 0; node < plan->num_nodes(); ++node) {
      TrainingPoint pt;
      pt.query = featurizer_.QueryFeatures(query_);
      pt.plan = featurizer_.PlanFeatures(query_, *plan, node);
      pt.label = label;
      data.push_back(std::move(pt));
    }
  }
  ValueNetwork::TrainOptions topts;
  topts.max_epochs = 60;
  topts.val_fraction = 0;
  topts.lr = 3e-3;
  network_->Train(data, topts);

  auto result = MakePlanner().TopK(query_);
  ASSERT_TRUE(result.ok());
  std::vector<int> joins, scans;
  result->plans[0].plan.CountOps(&joins, &scans);
  EXPECT_EQ(joins[static_cast<int>(JoinOp::kNLJoin)], 0);
}

}  // namespace
}  // namespace balsa
