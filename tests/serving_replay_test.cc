// ReplayWorkload determinism: for a fixed seed the issued request sequence
// is a pure function of (seed, client index) — identical across runs and
// across server planning-thread counts — and the version range the replay
// observes is reported faithfully.
#include "src/serving/replay_driver.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/plan/query_builder.h"
#include "test_util.h"

namespace balsa {
namespace {

class ReplayDeterminismTest : public ::testing::Test {
 protected:
  ReplayDeterminismTest()
      : fixture_(testing::MakeStarFixture()),
        featurizer_(&fixture_.schema(), fixture_.estimator.get()) {
    ValueNetConfig config;
    config.query_dim = featurizer_.query_dim();
    config.node_dim = featurizer_.node_dim();
    config.tree_hidden1 = 16;
    config.tree_hidden2 = 8;
    config.mlp_hidden = 8;
    config.init_seed = 11;
    network_ = std::make_unique<ValueNetwork>(config);
    for (int64_t region = 0; region < 4; ++region) {
      QueryBuilder builder(&fixture_.schema(), "star_v");
      auto query = builder.From("sales", "s")
                       .From("customer", "c")
                       .JoinEq("s.customer_id", "c.id")
                       .Filter("c.region", PredOp::kEq, region)
                       .Build();
      BALSA_CHECK(query.ok(), "variant");
      variants_.push_back(std::move(query).value());
      variants_.back().set_id(static_cast<int>(region));
    }
    for (const Query& q : variants_) queries_.push_back(&q);
  }

  std::unique_ptr<OptimizerServer> MakeServer(int planning_threads) {
    OptimizerServerOptions options;
    options.planner.beam_size = 4;
    options.planner.top_k = 1;
    options.num_planning_threads = planning_threads;
    return std::make_unique<OptimizerServer>(&fixture_.schema(), &featurizer_,
                                             network_.get(),
                                             fixture_.oracle.get(), options);
  }

  ReplayReport Replay(OptimizerServer* server) {
    ReplayOptions options;
    options.num_clients = 4;
    options.requests_per_client = 30;
    options.seed = 99;
    options.record_sequences = true;
    auto report = ReplayWorkload(server, queries_, options);
    BALSA_CHECK(report.ok(), report.status().ToString());
    return std::move(report).value();
  }

  testing::StarFixture fixture_;
  Featurizer featurizer_;
  std::unique_ptr<ValueNetwork> network_;
  std::vector<Query> variants_;
  std::vector<const Query*> queries_;
};

TEST_F(ReplayDeterminismTest, SequenceIsIdenticalAcrossRunsAndThreadCounts) {
  auto server_a = MakeServer(/*planning_threads=*/1);
  ReplayReport first = Replay(server_a.get());
  ASSERT_EQ(first.client_sequences.size(), 4u);
  for (const auto& sequence : first.client_sequences) {
    EXPECT_EQ(sequence.size(), 30u);
  }

  // Same server again (cache now warm — different hit pattern, same
  // sequence), then a fresh server with a different planning pool size.
  ReplayReport second = Replay(server_a.get());
  EXPECT_EQ(second.client_sequences, first.client_sequences);

  auto server_b = MakeServer(/*planning_threads=*/3);
  ReplayReport third = Replay(server_b.get());
  EXPECT_EQ(third.client_sequences, first.client_sequences);

  // Clients draw from distinct streams: not all sequences are equal.
  EXPECT_NE(first.client_sequences[0], first.client_sequences[1]);
}

TEST_F(ReplayDeterminismTest, SequencesAreOffByDefault) {
  auto server = MakeServer(1);
  ReplayOptions options;
  options.num_clients = 2;
  options.requests_per_client = 5;
  auto report = ReplayWorkload(server.get(), queries_, options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->client_sequences.empty());
}

TEST_F(ReplayDeterminismTest, ReportsServedVersionRange) {
  auto server = MakeServer(1);
  ReplayReport before = Replay(server.get());
  EXPECT_EQ(before.min_stats_version, 0);
  EXPECT_EQ(before.max_stats_version, 0);

  fixture_.oracle->BumpGeneration();
  ReplayReport after = Replay(server.get());
  // Every request issued after the bump serves at the new version: the
  // zero-stale-plans property the adaptive bench gates on.
  EXPECT_EQ(after.min_stats_version, 1);
  EXPECT_EQ(after.max_stats_version, 1);
}

}  // namespace
}  // namespace balsa
