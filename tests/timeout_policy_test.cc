#include "src/balsa/timeout_policy.h"

#include <gtest/gtest.h>

namespace balsa {
namespace {

TEST(TimeoutPolicyTest, NoTimeoutBeforeFirstIteration) {
  TimeoutPolicy policy;
  EXPECT_LE(policy.CurrentTimeoutMs(), 0);  // iteration 0 runs untimed
}

TEST(TimeoutPolicyTest, SlackAppliedAfterFirstObservation) {
  TimeoutPolicy::Options options;
  options.slack = 2.0;
  TimeoutPolicy policy(options);
  policy.ObserveIteration(1000);
  EXPECT_DOUBLE_EQ(policy.CurrentTimeoutMs(), 2000);
}

TEST(TimeoutPolicyTest, TimeoutTightensMonotonically) {
  TimeoutPolicy::Options options;
  options.slack = 2.0;
  TimeoutPolicy policy(options);
  policy.ObserveIteration(1000);
  policy.ObserveIteration(400);  // better iteration -> tighten
  EXPECT_DOUBLE_EQ(policy.CurrentTimeoutMs(), 800);
  policy.ObserveIteration(900);  // worse iteration -> keep
  EXPECT_DOUBLE_EQ(policy.CurrentTimeoutMs(), 800);
}

TEST(TimeoutPolicyTest, DisabledNeverTimesOut) {
  TimeoutPolicy::Options options;
  options.enabled = false;
  TimeoutPolicy policy(options);
  policy.ObserveIteration(1000);
  EXPECT_LE(policy.CurrentTimeoutMs(), 0);
}

TEST(TimeoutPolicyTest, RelabelValueIsPaperDefault) {
  TimeoutPolicy policy;
  EXPECT_DOUBLE_EQ(policy.relabel_ms(), 4096.0 * 1000.0);
}

TEST(TimeoutPolicyTest, IgnoresNonPositiveObservations) {
  TimeoutPolicy policy;
  policy.ObserveIteration(0);
  EXPECT_LE(policy.CurrentTimeoutMs(), 0);
  policy.ObserveIteration(-5);
  EXPECT_LE(policy.CurrentTimeoutMs(), 0);
}

}  // namespace
}  // namespace balsa
