#include "src/model/featurizer.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace balsa {
namespace {

class FeaturizerTest : public ::testing::Test {
 protected:
  FeaturizerTest()
      : fixture_(testing::MakeStarFixture()),
        query_(testing::MakeStarQuery(fixture_.schema())),
        featurizer_(&fixture_.schema(), fixture_.estimator.get()) {}

  testing::StarFixture fixture_;
  Query query_;
  Featurizer featurizer_;
};

TEST_F(FeaturizerTest, Dimensions) {
  EXPECT_EQ(featurizer_.query_dim(), fixture_.schema().num_tables());
  EXPECT_EQ(featurizer_.node_dim(),
            kNumJoinOps + kNumScanOps + fixture_.schema().num_tables());
}

TEST_F(FeaturizerTest, QueryFeaturesHoldSelectivities) {
  nn::Vec feat = featurizer_.QueryFeatures(query_);
  ASSERT_EQ(feat.size(), static_cast<size_t>(featurizer_.query_dim()));
  int sales = fixture_.schema().TableIndex("sales");
  int customer = fixture_.schema().TableIndex("customer");
  // Unfiltered fact: selectivity 1. Filtered dim: in (0, 1).
  EXPECT_FLOAT_EQ(feat[sales], 1.0f);
  EXPECT_GT(feat[customer], 0.f);
  EXPECT_LT(feat[customer], 1.f);
}

TEST_F(FeaturizerTest, ScopedQueryFeaturesZeroAbsentTables) {
  nn::Vec feat =
      featurizer_.QueryFeatures(query_, TableSet::Single(0).With(1));
  int product = fixture_.schema().TableIndex("product");
  int store = fixture_.schema().TableIndex("store");
  EXPECT_FLOAT_EQ(feat[product], 0.f);
  EXPECT_FLOAT_EQ(feat[store], 0.f);
  int sales = fixture_.schema().TableIndex("sales");
  EXPECT_GT(feat[sales], 0.f);
}

TEST_F(FeaturizerTest, PlanTreeStructure) {
  Plan p;
  int s = p.AddScan(0, ScanOp::kSeqScan);
  int c = p.AddScan(1, ScanOp::kIndexScan);
  p.AddJoin(s, c, JoinOp::kMergeJoin);

  nn::TreeSample t = featurizer_.PlanFeatures(query_, p);
  ASSERT_EQ(t.features.size(), 3u);
  // Preorder: root first.
  EXPECT_EQ(t.left[0], 1);
  EXPECT_EQ(t.right[0], 2);
  EXPECT_EQ(t.left[1], -1);

  // Root carries the merge-join one-hot.
  EXPECT_FLOAT_EQ(t.features[0][static_cast<int>(JoinOp::kMergeJoin)], 1.f);
  // Left child is a seq scan of sales.
  EXPECT_FLOAT_EQ(
      t.features[1][kNumJoinOps + static_cast<int>(ScanOp::kSeqScan)], 1.f);
  int sales = fixture_.schema().TableIndex("sales");
  EXPECT_FLOAT_EQ(t.features[1][kNumJoinOps + kNumScanOps + sales], 1.f);
  // Right child: index scan of customer.
  EXPECT_FLOAT_EQ(
      t.features[2][kNumJoinOps + static_cast<int>(ScanOp::kIndexScan)], 1.f);

  // Root's table indicator covers both tables.
  int customer = fixture_.schema().TableIndex("customer");
  EXPECT_FLOAT_EQ(t.features[0][kNumJoinOps + kNumScanOps + sales], 1.f);
  EXPECT_FLOAT_EQ(t.features[0][kNumJoinOps + kNumScanOps + customer], 1.f);
}

TEST_F(FeaturizerTest, SubtreeFeaturesMatchExtractedPlan) {
  Plan p;
  int s = p.AddScan(0, ScanOp::kSeqScan);
  int c = p.AddScan(1, ScanOp::kSeqScan);
  int sc = p.AddJoin(s, c, JoinOp::kHashJoin);
  int st = p.AddScan(3, ScanOp::kSeqScan);
  p.AddJoin(sc, st, JoinOp::kHashJoin);

  nn::TreeSample sub = featurizer_.PlanFeatures(query_, p, sc);
  Plan extracted = ExtractSubtree(p, sc);
  nn::TreeSample direct = featurizer_.PlanFeatures(query_, extracted);
  ASSERT_EQ(sub.features.size(), direct.features.size());
  for (size_t i = 0; i < sub.features.size(); ++i) {
    EXPECT_EQ(sub.features[i], direct.features[i]) << "node " << i;
    EXPECT_EQ(sub.left[i], direct.left[i]);
    EXPECT_EQ(sub.right[i], direct.right[i]);
  }
}

TEST_F(FeaturizerTest, SelfJoinAliasesShareTableSlot) {
  QueryBuilder b(&fixture_.schema(), "self");
  auto q = b.From("sales", "s1").From("sales", "s2").From("customer", "c")
               .JoinEq("s1.customer_id", "c.id")
               .JoinEq("s2.customer_id", "c.id")
               .Filter("s1.amount", PredOp::kLt, 10)
               .Build();
  ASSERT_TRUE(q.ok());
  q->set_id(41);
  nn::Vec feat = featurizer_.QueryFeatures(*q);
  int sales = fixture_.schema().TableIndex("sales");
  // The slot holds the *most selective* alias's selectivity.
  EXPECT_GT(feat[sales], 0.f);
  EXPECT_LT(feat[sales], 1.f);
}

}  // namespace
}  // namespace balsa
