#include "src/workloads/workload.h"

#include <set>

#include <gtest/gtest.h>

#include "src/util/logging.h"
#include "src/workloads/imdb_like.h"
#include "src/workloads/job_workload.h"
#include "src/workloads/tpch_like.h"

namespace balsa {
namespace {

class JobWorkloadTest : public ::testing::Test {
 protected:
  JobWorkloadTest() {
    auto schema = BuildImdbLikeSchema();
    BALSA_CHECK(schema.ok(), "schema");
    schema_ = std::move(schema).value();
    auto workload = GenerateJobWorkload(schema_);
    BALSA_CHECK(workload.ok(), "workload");
    workload_ = std::move(workload).value();
  }

  Schema schema_;
  Workload workload_;
};

TEST_F(JobWorkloadTest, Has113Queries) {
  EXPECT_EQ(workload_.num_queries(), 113);
}

TEST_F(JobWorkloadTest, QueriesAssignedSequentialIds) {
  for (int i = 0; i < workload_.num_queries(); ++i) {
    EXPECT_EQ(workload_.query(i).id(), i);
  }
}

TEST_F(JobWorkloadTest, JoinCountsMatchPaperRange) {
  int total_joins = 0;
  for (const Query& q : workload_.queries()) {
    int joins = q.num_relations() - 1;  // connected SPJ
    EXPECT_GE(joins, 2);
    EXPECT_LE(joins, 16);
    total_joins += joins;
    EXPECT_TRUE(q.IsConnected(q.AllTables())) << q.name();
  }
  double avg = static_cast<double>(total_joins) / workload_.num_queries();
  // JOB averages ~8 joins per query.
  EXPECT_GT(avg, 5.0);
  EXPECT_LT(avg, 10.0);
}

TEST_F(JobWorkloadTest, Has33Templates) {
  std::set<uint64_t> signatures;
  for (const Query& q : workload_.queries()) {
    signatures.insert(q.TemplateSignature(schema_));
  }
  EXPECT_EQ(signatures.size(), 33u);
}

TEST_F(JobWorkloadTest, VariantsDifferInFiltersNotJoins) {
  // q1a and q1b share a template signature but not filter constants.
  const Query& a = workload_.query(0);
  const Query& b = workload_.query(1);
  EXPECT_EQ(a.TemplateSignature(schema_), b.TemplateSignature(schema_));
  EXPECT_EQ(a.joins().size(), b.joins().size());
}

TEST_F(JobWorkloadTest, RandomSplitPartitions) {
  ASSERT_TRUE(workload_.RandomSplit(19, 1).ok());
  EXPECT_EQ(workload_.test_indices().size(), 19u);
  EXPECT_EQ(workload_.train_indices().size(), 94u);
  std::set<int> all;
  for (int i : workload_.train_indices()) all.insert(i);
  for (int i : workload_.test_indices()) all.insert(i);
  EXPECT_EQ(all.size(), 113u);
}

TEST_F(JobWorkloadTest, SlowSplitTakesSlowest) {
  std::vector<double> runtimes(113, 1.0);
  runtimes[5] = 100;
  runtimes[50] = 90;
  runtimes[112] = 80;
  ASSERT_TRUE(workload_.SlowSplit(3, runtimes).ok());
  EXPECT_EQ(workload_.test_indices(), (std::vector<int>{5, 50, 112}));
}

TEST_F(JobWorkloadTest, SlowestTemplateSplitHoldsOutWholeTemplates) {
  std::vector<double> runtimes(113, 1.0);
  runtimes[0] = 1000;  // template q1 becomes the slowest
  ASSERT_TRUE(workload_.SlowestTemplateSplit(2, runtimes, schema_).ok());
  // All q1 variants (4) are held out together.
  ASSERT_GE(workload_.test_indices().size(), 4u);
  uint64_t sig = workload_.query(0).TemplateSignature(schema_);
  int with_sig = 0;
  for (int i : workload_.test_indices()) {
    with_sig += workload_.query(i).TemplateSignature(schema_) == sig;
  }
  EXPECT_EQ(with_sig, 4);
}

TEST_F(JobWorkloadTest, SplitRejectsOverlap) {
  EXPECT_FALSE(workload_.SetSplit({0, 1}, {1, 2}).ok());
  EXPECT_FALSE(workload_.SetSplit({0, 200}, {}).ok());
}

TEST_F(JobWorkloadTest, ExtJobTemplatesAreDisjointFromJob) {
  auto ext = GenerateExtJobWorkload(schema_);
  ASSERT_TRUE(ext.ok());
  EXPECT_EQ(ext->num_queries(), 32);
  std::set<uint64_t> job_sigs, ext_sigs;
  for (const Query& q : workload_.queries()) {
    job_sigs.insert(q.TemplateSignature(schema_));
  }
  for (const Query& q : ext->queries()) {
    ext_sigs.insert(q.TemplateSignature(schema_));
    EXPECT_GE(q.num_relations(), 3);
    EXPECT_LE(q.num_relations() - 1, 10);  // 2-10 joins (§8.5)
  }
  EXPECT_EQ(ext_sigs.size(), 16u);  // every template distinct
  for (uint64_t sig : ext_sigs) {
    EXPECT_EQ(job_sigs.count(sig), 0u) << "Ext-JOB template found in JOB";
  }
}

TEST_F(JobWorkloadTest, NewExtJobTemplatesAreWellFormed) {
  auto ext = GenerateExtJobWorkload(schema_);
  ASSERT_TRUE(ext.ok());
  // e13-e16 land at the tail (two variants each); find them by name and
  // check the join shapes they were designed around.
  struct Expectation {
    const char* name;
    int num_relations;
  };
  const Expectation expected[] = {
      {"e13a", 5}, {"e13b", 5}, {"e14a", 5}, {"e14b", 5},
      {"e15a", 7}, {"e15b", 7}, {"e16a", 7}, {"e16b", 7},
  };
  for (const Expectation& e : expected) {
    const Query* found = nullptr;
    for (const Query& q : ext->queries()) {
      if (q.name() == e.name) found = &q;
    }
    ASSERT_NE(found, nullptr) << e.name;
    EXPECT_EQ(found->num_relations(), e.num_relations) << e.name;
    EXPECT_TRUE(found->IsConnected(found->AllTables())) << e.name;
    EXPECT_FALSE(found->filters().empty()) << e.name;
  }
  // Variants of a new template share the join graph, as in JOB's 1a/1b.
  auto find = [&](const char* name) -> const Query& {
    for (const Query& q : ext->queries()) {
      if (q.name() == name) return q;
    }
    BALSA_CHECK(false, name);
    return ext->query(0);
  };
  for (const char* base : {"e13", "e14", "e15", "e16"}) {
    const Query& a = find((std::string(base) + "a").c_str());
    const Query& b = find((std::string(base) + "b").c_str());
    EXPECT_EQ(a.TemplateSignature(schema_), b.TemplateSignature(schema_))
        << base;
  }
}

TEST_F(JobWorkloadTest, DeterministicForSeed) {
  auto again = GenerateJobWorkload(schema_);
  ASSERT_TRUE(again.ok());
  for (int i = 0; i < workload_.num_queries(); ++i) {
    EXPECT_EQ(workload_.query(i).name(), again->query(i).name());
    ASSERT_EQ(workload_.query(i).filters().size(),
              again->query(i).filters().size());
    for (size_t f = 0; f < workload_.query(i).filters().size(); ++f) {
      EXPECT_EQ(workload_.query(i).filters()[f].value,
                again->query(i).filters()[f].value);
    }
  }
}

TEST(TpchWorkloadTest, TemplateSplitMatchesPaper) {
  auto schema = BuildTpchLikeSchema();
  ASSERT_TRUE(schema.ok());
  auto workload = GenerateTpchWorkload(*schema);
  ASSERT_TRUE(workload.ok());
  EXPECT_EQ(workload->num_queries(), 80);
  EXPECT_EQ(workload->train_indices().size(), 70u);  // 7 templates x 10
  EXPECT_EQ(workload->test_indices().size(), 10u);   // template 10
  // All test queries share the q10 template.
  std::set<uint64_t> test_sigs;
  for (int i : workload->test_indices()) {
    test_sigs.insert(workload->query(i).TemplateSignature(*schema));
  }
  EXPECT_EQ(test_sigs.size(), 1u);
}

TEST(TpchWorkloadTest, FewerJoinsThanJob) {
  auto schema = BuildTpchLikeSchema();
  auto workload = GenerateTpchWorkload(*schema);
  ASSERT_TRUE(workload.ok());
  for (const Query& q : workload->queries()) {
    EXPECT_LE(q.num_relations(), 8);  // TPC-H has much fewer joins (§8.2)
  }
}

TEST(ImdbSchemaTest, TwentyOneTablesWithFks) {
  auto schema = BuildImdbLikeSchema();
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_tables(), 21);
  EXPECT_GE(schema->foreign_keys().size(), 20u);
  // Spot-check an FK edge used by every JOB query family.
  EXPECT_TRUE(schema->IsForeignKeyJoin("movie_companies", "movie_id",
                                       "title", "id"));
  EXPECT_TRUE(
      schema->IsForeignKeyJoin("title", "id", "movie_companies", "movie_id"));
  EXPECT_FALSE(
      schema->IsForeignKeyJoin("title", "id", "company_name", "id"));
}

}  // namespace
}  // namespace balsa
