// The sharded LRU plan cache: eviction order, shard independence, and
// stats-version (lazy) invalidation.
#include "src/serving/plan_cache.h"

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace balsa {
namespace {

CachedPlan MakeEntry(int relation, int64_t version = 0,
                     double planning_micros = 0) {
  CachedPlan entry;
  entry.plan.AddScan(relation, ScanOp::kSeqScan);
  entry.plan.set_root(0);
  entry.predicted_ms = relation * 10.0;
  entry.stats_version = version;
  entry.planning_micros = planning_micros;
  return entry;
}

/// Finds `count` fingerprints that all land in shard `shard`.
std::vector<uint64_t> KeysInShard(const PlanCache& cache, int shard,
                                  int count) {
  std::vector<uint64_t> keys;
  for (uint64_t k = 1; static_cast<int>(keys.size()) < count; ++k) {
    if (cache.ShardOf(k) == shard) keys.push_back(k);
  }
  return keys;
}

TEST(PlanCacheTest, LookupMissesOnEmpty) {
  PlanCache cache;
  std::shared_ptr<const CachedPlan> out;
  EXPECT_FALSE(cache.Lookup(42, 0, &out));
  EXPECT_EQ(cache.Totals().misses, 1);
}

TEST(PlanCacheTest, InsertThenLookupRoundTrips) {
  PlanCache cache;
  cache.Insert(42, MakeEntry(3, 7));
  std::shared_ptr<const CachedPlan> out;
  ASSERT_TRUE(cache.Lookup(42, 7, &out));
  EXPECT_EQ(out->plan.node(0).relation, 3);
  EXPECT_EQ(out->stats_version, 7);
  EXPECT_EQ(cache.Totals().hits, 1);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCacheTest, EvictsLeastRecentlyUsedFirst) {
  PlanCacheOptions options;
  options.num_shards = 1;
  options.shard_capacity = 2;
  PlanCache cache(options);
  cache.Insert(1, MakeEntry(1));
  cache.Insert(2, MakeEntry(2));
  std::shared_ptr<const CachedPlan> out;
  // Touch 1 so 2 becomes the LRU victim.
  ASSERT_TRUE(cache.Lookup(1, 0, &out));
  cache.Insert(3, MakeEntry(3));
  EXPECT_TRUE(cache.Lookup(1, 0, &out));
  EXPECT_FALSE(cache.Lookup(2, 0, &out));  // evicted
  EXPECT_TRUE(cache.Lookup(3, 0, &out));
  EXPECT_EQ(cache.Totals().lru_evictions, 1);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PlanCacheTest, ReinsertFreshensInsteadOfEvicting) {
  PlanCacheOptions options;
  options.num_shards = 1;
  options.shard_capacity = 2;
  PlanCache cache(options);
  cache.Insert(1, MakeEntry(1));
  cache.Insert(2, MakeEntry(2));
  cache.Insert(1, MakeEntry(4));  // replace: 2 stays, 1 moves to front
  std::shared_ptr<const CachedPlan> out;
  ASSERT_TRUE(cache.Lookup(1, 0, &out));
  EXPECT_EQ(out->plan.node(0).relation, 4);
  EXPECT_TRUE(cache.Lookup(2, 0, &out));
  EXPECT_EQ(cache.Totals().lru_evictions, 0);
}

TEST(PlanCacheTest, ShardsEvictIndependently) {
  PlanCacheOptions options;
  options.num_shards = 4;
  options.shard_capacity = 1;
  PlanCache cache(options);
  std::vector<uint64_t> shard0 = KeysInShard(cache, 0, 2);
  std::vector<uint64_t> shard1 = KeysInShard(cache, 1, 1);

  cache.Insert(shard0[0], MakeEntry(1));
  cache.Insert(shard1[0], MakeEntry(2));
  // Overflow shard 0 only: shard 1's entry must survive.
  cache.Insert(shard0[1], MakeEntry(3));

  std::shared_ptr<const CachedPlan> out;
  EXPECT_FALSE(cache.Lookup(shard0[0], 0, &out));
  EXPECT_TRUE(cache.Lookup(shard0[1], 0, &out));
  EXPECT_TRUE(cache.Lookup(shard1[0], 0, &out));
  EXPECT_EQ(cache.shard_metrics(0).lru_evictions, 1);
  EXPECT_EQ(cache.shard_metrics(1).lru_evictions, 0);
  EXPECT_EQ(cache.shard_metrics(1).entries, 1u);
}

TEST(PlanCacheTest, StatsVersionMismatchIsAMissAndEvictsLazily) {
  PlanCache cache;
  cache.Insert(42, MakeEntry(3, /*version=*/0));
  std::shared_ptr<const CachedPlan> out;
  // The bump happened: version-1 lookups must never see the version-0 plan,
  // and the first one reclaims the slot.
  EXPECT_FALSE(cache.Lookup(42, 1, &out));
  EXPECT_EQ(cache.Totals().stale_evictions, 1);
  EXPECT_EQ(cache.size(), 0u);
  // Older-version lookups can't resurrect it either.
  EXPECT_FALSE(cache.Lookup(42, 0, &out));

  cache.Insert(42, MakeEntry(5, /*version=*/1));
  ASSERT_TRUE(cache.Lookup(42, 1, &out));
  EXPECT_EQ(out->stats_version, 1);
}

TEST(PlanCacheTest, LaggardRequestsNeverDowngradeFreshEntries) {
  PlanCache cache;
  // A bump raced this request: the cache already holds the version-1 plan
  // when a version-0 reader arrives. It must miss *without* evicting.
  cache.Insert(42, MakeEntry(5, /*version=*/1));
  std::shared_ptr<const CachedPlan> out;
  EXPECT_FALSE(cache.Lookup(42, 0, &out));
  EXPECT_EQ(cache.Totals().stale_evictions, 0);
  ASSERT_TRUE(cache.Lookup(42, 1, &out));  // fresh entry survived
  EXPECT_EQ(out->plan.node(0).relation, 5);

  // And the laggard's own (old-generation) plan is dropped on insert.
  cache.Insert(42, MakeEntry(3, /*version=*/0));
  ASSERT_TRUE(cache.Lookup(42, 1, &out));
  EXPECT_EQ(out->plan.node(0).relation, 5);
}

TEST(PlanCacheTest, RecheckLookupDoesNotDoubleCountMisses) {
  PlanCache cache;
  std::shared_ptr<const CachedPlan> out;
  // The miss path's sequence: counted lookup, then an uncounted recheck.
  EXPECT_FALSE(cache.Lookup(42, 0, &out));
  EXPECT_FALSE(cache.RecheckLookup(42, 0, &out));
  EXPECT_EQ(cache.Totals().misses, 1);
  // A recheck that hits still counts the hit (a plan was served).
  cache.Insert(42, MakeEntry(3));
  EXPECT_TRUE(cache.RecheckLookup(42, 0, &out));
  EXPECT_EQ(cache.Totals().hits, 1);
}

TEST(PlanCacheTest, ZeroCapacityDisablesTheCache) {
  PlanCacheOptions options;
  options.shard_capacity = 0;
  PlanCache cache(options);
  cache.Insert(42, MakeEntry(3));
  std::shared_ptr<const CachedPlan> out;
  EXPECT_FALSE(cache.Lookup(42, 0, &out));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(PlanCacheTest, CountersAddUpAcrossShards) {
  PlanCacheOptions options;
  options.num_shards = 8;
  PlanCache cache(options);
  for (uint64_t k = 0; k < 100; ++k) cache.Insert(k, MakeEntry(1));
  std::shared_ptr<const CachedPlan> out;
  int hits = 0;
  for (uint64_t k = 0; k < 150; ++k) hits += cache.Lookup(k, 0, &out);
  EXPECT_EQ(hits, 100);
  PlanCache::Metrics total = cache.Totals();
  EXPECT_EQ(total.insertions, 100);
  EXPECT_EQ(total.hits, 100);
  EXPECT_EQ(total.misses, 50);
  EXPECT_EQ(total.entries, 100u);
}

TEST(PlanCacheTest, AdmissionFloorRejectsCheapPlans) {
  PlanCacheOptions options;
  options.admission_min_plan_micros = 100.0;
  PlanCache cache(options);
  cache.Insert(1, MakeEntry(1, 0, /*planning_micros=*/10.0));  // too cheap
  cache.Insert(2, MakeEntry(2, 0, /*planning_micros=*/500.0));
  std::shared_ptr<const CachedPlan> out;
  EXPECT_FALSE(cache.Lookup(1, 0, &out));
  EXPECT_TRUE(cache.Lookup(2, 0, &out));
  PlanCache::Metrics totals = cache.Totals();
  EXPECT_EQ(totals.admission_rejections, 1);
  EXPECT_EQ(totals.insertions, 1);
  EXPECT_EQ(cache.size(), 1u);

  // Replacement bypasses the floor: the slot is already paid for, and a
  // re-warm's fast replan must be able to refresh an existing fingerprint.
  cache.Insert(2, MakeEntry(3, 1, /*planning_micros=*/10.0));
  ASSERT_TRUE(cache.Lookup(2, 1, &out));
  EXPECT_EQ(out->plan.node(0).relation, 3);
  EXPECT_EQ(cache.Totals().admission_rejections, 1);
}

TEST(PlanCacheTest, ZeroFloorAdmitsEverything) {
  PlanCache cache;  // default admission_min_plan_micros = 0
  cache.Insert(1, MakeEntry(1, 0, 0.0));
  std::shared_ptr<const CachedPlan> out;
  EXPECT_TRUE(cache.Lookup(1, 0, &out));
  EXPECT_EQ(cache.Totals().admission_rejections, 0);
}

TEST(PlanCacheTest, HottestEntriesRankByHits) {
  PlanCache cache;
  for (uint64_t k = 1; k <= 4; ++k) cache.Insert(k, MakeEntry(static_cast<int>(k)));
  std::shared_ptr<const CachedPlan> out;
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(cache.Lookup(3, 0, &out));
  for (int i = 0; i < 2; ++i) ASSERT_TRUE(cache.Lookup(1, 0, &out));

  std::vector<PlanCache::HotEntry> hot = cache.HottestEntries(3);
  ASSERT_EQ(hot.size(), 3u);
  EXPECT_EQ(hot[0].fingerprint, 3u);
  EXPECT_EQ(hot[0].hits, 5);
  EXPECT_EQ(hot[1].fingerprint, 1u);
  EXPECT_EQ(hot[1].hits, 2);
  EXPECT_EQ(hot[2].hits, 0);  // ties by fingerprint: 2 before 4
  EXPECT_EQ(hot[2].fingerprint, 2u);
  // Entries are shared with the cache, not copied.
  EXPECT_EQ(hot[0].entry->plan.node(0).relation, 3);

  // Replacing an entry (the re-warm path) resets its heat: popularity
  // belongs to the plan, not the slot.
  cache.Insert(3, MakeEntry(9, 1));
  hot = cache.HottestEntries(1);
  ASSERT_EQ(hot.size(), 1u);
  EXPECT_EQ(hot[0].fingerprint, 1u);
  EXPECT_EQ(hot[0].hits, 2);
}

TEST(PlanCacheTest, ReplacementResetsHitCount) {
  // Regression: a replacing insert used to keep the old slot's hit count,
  // so a fresh-generation plan inherited the stale plan's popularity and
  // skewed HottestEntries/Rewarm ranking.
  PlanCache cache;
  cache.Insert(1, MakeEntry(1, 0));
  cache.Insert(2, MakeEntry(2, 0));
  std::shared_ptr<const CachedPlan> out;
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(cache.Lookup(1, 0, &out));
  ASSERT_TRUE(cache.Lookup(2, 0, &out));

  cache.Insert(1, MakeEntry(5, 1));  // new generation replaces the slot
  std::vector<PlanCache::HotEntry> hot = cache.HottestEntries(2);
  ASSERT_EQ(hot.size(), 2u);
  EXPECT_EQ(hot[0].fingerprint, 2u);  // 2's single real hit now outranks 1
  EXPECT_EQ(hot[0].hits, 1);
  EXPECT_EQ(hot[1].fingerprint, 1u);
  EXPECT_EQ(hot[1].hits, 0);
  EXPECT_EQ(hot[1].entry->stats_version, 1);

  // Hits after the replacement accrue to the new plan normally.
  ASSERT_TRUE(cache.Lookup(1, 1, &out));
  hot = cache.HottestEntries(1);
  EXPECT_EQ(hot[0].fingerprint, 1u);
  EXPECT_EQ(hot[0].hits, 1);
}

TEST(PlanCacheTest, ApproxBytesCountsSharedExemplarsOnce) {
  // Re-warm entries for many fingerprints often pin the *same* exemplar
  // Query via shared_ptr; the accounting must count it once, exactly like
  // Snapshot::DataBytes counts a chunk shared across versions once.
  auto make_exemplar = [] {
    return std::make_shared<const Query>(
        "q", std::vector<QueryRelation>(3), std::vector<JoinPredicate>{},
        std::vector<FilterPredicate>{});
  };

  PlanCache with_shared;
  EXPECT_EQ(with_shared.ApproxBytes(), 0u);
  auto shared = make_exemplar();
  CachedPlan a = MakeEntry(1);
  a.exemplar = shared;
  a.canonical_rank = {0, 1, 2};
  CachedPlan b = MakeEntry(2);
  b.exemplar = shared;
  b.canonical_rank = {0, 1, 2};
  with_shared.Insert(1, std::move(a));
  const size_t one_entry = with_shared.ApproxBytes();
  EXPECT_GT(one_entry, 0u);
  with_shared.Insert(2, std::move(b));
  const size_t shared_bytes = with_shared.ApproxBytes();

  PlanCache with_distinct;
  CachedPlan c = MakeEntry(1);
  c.exemplar = make_exemplar();
  c.canonical_rank = {0, 1, 2};
  CachedPlan d = MakeEntry(2);
  d.exemplar = make_exemplar();
  d.canonical_rank = {0, 1, 2};
  with_distinct.Insert(1, std::move(c));
  with_distinct.Insert(2, std::move(d));
  const size_t distinct_bytes = with_distinct.ApproxBytes();

  // Identical caches except for exemplar sharing: the difference is exactly
  // one deduped exemplar.
  EXPECT_LT(shared_bytes, distinct_bytes);
  EXPECT_EQ(distinct_bytes - shared_bytes,
            sizeof(Query) + 3 * sizeof(QueryRelation));
  // The second shared-exemplar entry still pays for its own slot and plan.
  EXPECT_GT(shared_bytes, one_entry);
}

// Totals() under racing lookups and inserts: no consistent cut is promised,
// but every monotone counter must (a) never decrease across successive
// Totals() calls and (b) lie within the per-shard sums taken before and
// after it — Totals() reads the shards in the same order as shard_metrics,
// so an interleaved read can only land between the two fences.
TEST(PlanCacheTest, TotalsStayMonotoneAndBoundedUnderConcurrency) {
  PlanCacheOptions options;
  options.num_shards = 4;
  options.shard_capacity = 16;  // small: force LRU evictions too
  PlanCache cache(options);

  auto sum_shards = [&] {
    PlanCache::Metrics sum;
    for (int s = 0; s < cache.num_shards(); ++s) {
      PlanCache::Metrics m = cache.shard_metrics(s);
      sum.hits += m.hits;
      sum.misses += m.misses;
      sum.insertions += m.insertions;
      sum.stale_evictions += m.stale_evictions;
      sum.lru_evictions += m.lru_evictions;
      sum.admission_rejections += m.admission_rejections;
    }
    return sum;
  };

  std::atomic<int> active{4};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      uint64_t key = static_cast<uint64_t>(t) * 7919 + 1;
      for (int i = 0; i < 30000; ++i) {
        key = key * 6364136223846793005ULL + 1442695040888963407ULL;
        const uint64_t fp = key % 256;
        std::shared_ptr<const CachedPlan> out;
        if (!cache.Lookup(fp, 0, &out)) {
          cache.Insert(fp, MakeEntry(static_cast<int>(fp % 4)));
        }
      }
      active.fetch_sub(1, std::memory_order_relaxed);
    });
  }

  // Read concurrently for as long as the writers run (and a few rounds
  // past quiescence), checking the bounds on every read.
  PlanCache::Metrics prev;
  for (int round = 0;
       round < 50 || active.load(std::memory_order_relaxed) > 0; ++round) {
    const PlanCache::Metrics before = sum_shards();
    const PlanCache::Metrics totals = cache.Totals();
    const PlanCache::Metrics after = sum_shards();

    auto check = [&](int64_t lo, int64_t mid, int64_t hi, int64_t last,
                     const char* field) {
      EXPECT_LE(lo, mid) << field << " below the pre-fence shard sum";
      EXPECT_LE(mid, hi) << field << " above the post-fence shard sum";
      EXPECT_GE(mid, last) << field << " went backwards across Totals()";
    };
    check(before.hits, totals.hits, after.hits, prev.hits, "hits");
    check(before.misses, totals.misses, after.misses, prev.misses, "misses");
    check(before.insertions, totals.insertions, after.insertions,
          prev.insertions, "insertions");
    check(before.stale_evictions, totals.stale_evictions,
          after.stale_evictions, prev.stale_evictions, "stale_evictions");
    check(before.lru_evictions, totals.lru_evictions, after.lru_evictions,
          prev.lru_evictions, "lru_evictions");
    check(before.admission_rejections, totals.admission_rejections,
          after.admission_rejections, prev.admission_rejections,
          "admission_rejections");
    prev = totals;
  }
  for (std::thread& w : workers) w.join();

  // At quiescence the cross-field identities hold exactly.
  const PlanCache::Metrics final_totals = cache.Totals();
  const PlanCache::Metrics final_sum = sum_shards();
  EXPECT_EQ(final_totals.hits, final_sum.hits);
  EXPECT_EQ(final_totals.misses, final_sum.misses);
  EXPECT_EQ(final_totals.insertions, final_sum.insertions);
  EXPECT_GT(final_totals.hits + final_totals.misses, 0);
}

}  // namespace
}  // namespace balsa
