// Tests for the SLO health monitor: delta-window semantics (the first tick
// establishes a baseline instead of judging all-time cumulatives; a p99
// rule fires on what happened since the last tick and resolves on its
// own), for_ticks/clear_ticks hysteresis, every rule kind, the bounded
// transition log, and graceful handling of missing metrics. All ticks are
// driven through the public EvaluateOnce() — no threads, no clocks.
// Runs under `ctest -L obs`.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/health.h"
#include "src/obs/metrics.h"
#include "src/obs/sampler.h"

namespace balsa::obs {
namespace {

TEST(HealthMonitorTest, FirstTickIsBaselineNotCumulativeJudgement) {
  MetricsRegistry registry;
  Log2Histogram latency;
  auto reg = registry.AttachHistogram("req_us", &latency);
  // A terrible all-time history recorded *before* the monitor's first look.
  for (int i = 0; i < 100; ++i) latency.Record(1e6);

  HealthMonitor monitor(&registry);
  HealthRule rule;
  rule.name = "p99";
  rule.kind = RuleKind::kWindowP99Above;
  rule.metric = "req_us";
  rule.threshold = 10;
  monitor.AddRule(rule);

  monitor.EvaluateOnce();  // prev == cur: delta 0, nothing to judge
  monitor.EvaluateOnce();  // quiet window: still 0
  EXPECT_EQ(monitor.FiringCount(), 0);
  EXPECT_TRUE(monitor.Events().empty());
}

TEST(HealthMonitorTest, WindowP99FiresOnStormAndResolvesAfterIt) {
  MetricsRegistry registry;
  Log2Histogram latency;
  auto reg = registry.AttachHistogram("req_us", &latency);

  HealthMonitor monitor(&registry);
  HealthRule rule;
  rule.name = "p99";
  rule.kind = RuleKind::kWindowP99Above;
  rule.metric = "req_us";
  rule.threshold = 1000;
  monitor.AddRule(rule);

  monitor.EvaluateOnce();  // baseline
  for (int i = 0; i < 50; ++i) latency.Record(5000);
  monitor.EvaluateOnce();  // the storm window
  EXPECT_TRUE(monitor.IsFiring("p99"));
  // A cumulative p99 would stay poisoned by the storm forever; the delta
  // window forgets it after one quiet tick.
  monitor.EvaluateOnce();
  EXPECT_FALSE(monitor.IsFiring("p99"));

  const std::vector<AlertEvent> events = monitor.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_TRUE(events[0].firing);
  EXPECT_EQ(events[0].tick, 2);
  EXPECT_GT(events[0].value, rule.threshold);
  EXPECT_FALSE(events[1].firing);
  EXPECT_EQ(events[1].tick, 3);
}

TEST(HealthMonitorTest, HysteresisNeedsConsecutiveTicksBothWays) {
  MetricsRegistry registry;
  Log2Histogram latency;
  auto reg = registry.AttachHistogram("req_us", &latency);

  HealthMonitor monitor(&registry);
  HealthRule rule;
  rule.name = "p99";
  rule.kind = RuleKind::kWindowP99Above;
  rule.metric = "req_us";
  rule.threshold = 1000;
  rule.for_ticks = 2;
  rule.clear_ticks = 2;
  monitor.AddRule(rule);

  auto breach = [&] {
    for (int i = 0; i < 20; ++i) latency.Record(5000);
    monitor.EvaluateOnce();
  };
  monitor.EvaluateOnce();  // baseline
  breach();                // 1 breached tick: not yet
  EXPECT_FALSE(monitor.IsFiring("p99"));
  breach();                // 2 consecutive: fires
  EXPECT_TRUE(monitor.IsFiring("p99"));
  monitor.EvaluateOnce();  // 1 healthy tick: still firing
  EXPECT_TRUE(monitor.IsFiring("p99"));
  monitor.EvaluateOnce();  // 2 consecutive: resolves
  EXPECT_FALSE(monitor.IsFiring("p99"));

  const std::vector<RuleStatus> rules = monitor.Rules();
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].times_fired, 1);
}

TEST(HealthMonitorTest, RateRuleJudgesPerTickIncrease) {
  MetricsRegistry registry;
  Counter errors;
  auto reg = registry.AttachCounter("errors", &errors);
  // A large pre-existing total must not trip a rate rule.
  errors.Inc(100);

  HealthMonitor monitor(&registry);
  HealthRule rule;
  rule.name = "error-rate";
  rule.kind = RuleKind::kWindowRateAbove;
  rule.metric = "errors";
  rule.threshold = 5;
  monitor.AddRule(rule);

  monitor.EvaluateOnce();  // baseline swallows the 100
  EXPECT_FALSE(monitor.IsFiring("error-rate"));
  errors.Inc(10);
  monitor.EvaluateOnce();
  EXPECT_TRUE(monitor.IsFiring("error-rate"));
  errors.Inc(2);
  monitor.EvaluateOnce();
  EXPECT_FALSE(monitor.IsFiring("error-rate"));
}

TEST(HealthMonitorTest, RatioRuleDividesDeltasAndSkipsEmptyWindows) {
  MetricsRegistry registry;
  Counter errors;
  Counter requests;
  auto reg_e = registry.AttachCounter("errors", &errors);
  auto reg_r = registry.AttachCounter("requests", &requests);

  HealthMonitor monitor(&registry);
  HealthRule rule;
  rule.name = "error-ratio";
  rule.kind = RuleKind::kRatioAbove;
  rule.metric = "errors";
  rule.denominator = "requests";
  rule.threshold = 0.5;
  monitor.AddRule(rule);

  monitor.EvaluateOnce();  // baseline
  monitor.EvaluateOnce();  // zero-traffic window: denominator delta 0 -> 0
  EXPECT_FALSE(monitor.IsFiring("error-ratio"));

  errors.Inc(8);
  requests.Inc(10);
  monitor.EvaluateOnce();  // 0.8 of this window's traffic errored
  EXPECT_TRUE(monitor.IsFiring("error-ratio"));

  requests.Inc(10);
  monitor.EvaluateOnce();  // clean window
  EXPECT_FALSE(monitor.IsFiring("error-ratio"));
}

TEST(HealthMonitorTest, GaugeRuleIsInstantaneous) {
  MetricsRegistry registry;
  Gauge depth;
  auto reg = registry.AttachGauge("queue_depth", &depth);
  depth.Set(50);

  HealthMonitor monitor(&registry);
  HealthRule rule;
  rule.name = "saturated";
  rule.kind = RuleKind::kGaugeAbove;
  rule.metric = "queue_depth";
  rule.threshold = 32;
  monitor.AddRule(rule);

  // Gauges are levels, not flows: no baseline tick needed.
  monitor.EvaluateOnce();
  EXPECT_TRUE(monitor.IsFiring("saturated"));
  depth.Set(3);
  monitor.EvaluateOnce();
  EXPECT_FALSE(monitor.IsFiring("saturated"));
}

TEST(HealthMonitorTest, BurnRateReadsZeroWithoutASampler) {
  MetricsRegistry registry;
  Counter errors;
  Counter requests;
  auto reg_e = registry.AttachCounter("errors", &errors);
  auto reg_r = registry.AttachCounter("requests", &requests);

  HealthMonitor monitor(&registry);
  HealthRule rule;
  rule.name = "burn";
  rule.kind = RuleKind::kBurnRateAbove;
  rule.metric = "errors";
  rule.denominator = "requests";
  rule.threshold = 0.1;
  monitor.AddRule(rule);

  monitor.EvaluateOnce();
  errors.Inc(1000);
  requests.Inc(1000);
  monitor.EvaluateOnce();
  EXPECT_FALSE(monitor.IsFiring("burn"));
}

TEST(HealthMonitorTest, BurnRateUsesTheSamplersWindow) {
  MetricsRegistry registry;
  Counter errors;
  Counter requests;
  auto reg_e = registry.AttachCounter("errors", &errors);
  auto reg_r = registry.AttachCounter("requests", &requests);

  TimeSeriesSampler sampler(&registry);
  HealthMonitor monitor(&registry);
  monitor.SetSampler(&sampler);
  HealthRule rule;
  rule.name = "burn";
  rule.kind = RuleKind::kBurnRateAbove;
  rule.metric = "errors";
  rule.denominator = "requests";
  rule.threshold = 0.5;
  monitor.AddRule(rule);

  // Both rates divide by the same elapsed time, so the burn rate reduces
  // to delta(errors)/delta(requests) over the sampled window — no timing
  // sensitivity beyond "some time passed between samples".
  sampler.SampleOnce();
  errors.Inc(9);
  requests.Inc(10);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  sampler.SampleOnce();
  monitor.EvaluateOnce();
  EXPECT_TRUE(monitor.IsFiring("burn"));

  errors.Inc(0);
  requests.Inc(100);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  sampler.SampleOnce();
  monitor.EvaluateOnce();
  monitor.EvaluateOnce();
  EXPECT_FALSE(monitor.IsFiring("burn"));
}

TEST(HealthMonitorTest, EventLogIsBoundedOldestEvicted) {
  MetricsRegistry registry;
  Gauge depth;
  auto reg = registry.AttachGauge("queue_depth", &depth);

  HealthMonitorOptions options;
  options.max_events = 4;
  HealthMonitor monitor(&registry, options);
  HealthRule rule;
  rule.name = "saturated";
  rule.kind = RuleKind::kGaugeAbove;
  rule.metric = "queue_depth";
  rule.threshold = 10;
  monitor.AddRule(rule);

  // 6 full fire/resolve cycles = 12 transitions; only the last 4 survive.
  for (int cycle = 0; cycle < 6; ++cycle) {
    depth.Set(100);
    monitor.EvaluateOnce();
    depth.Set(0);
    monitor.EvaluateOnce();
  }
  const std::vector<AlertEvent> events = monitor.Events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().tick, 9);
  EXPECT_EQ(events.back().tick, 12);
  const std::vector<RuleStatus> rules = monitor.Rules();
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].times_fired, 6);
}

TEST(HealthMonitorTest, MissingMetricEvaluatesToZero) {
  MetricsRegistry registry;
  HealthMonitor monitor(&registry);
  HealthRule rule;
  rule.name = "ghost";
  rule.kind = RuleKind::kWindowP99Above;
  rule.metric = "does.not.exist";
  rule.threshold = 1;
  monitor.AddRule(rule);

  monitor.EvaluateOnce();
  monitor.EvaluateOnce();
  EXPECT_FALSE(monitor.IsFiring("ghost"));
  const std::vector<RuleStatus> rules = monitor.Rules();
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].last_value, 0);
}

}  // namespace
}  // namespace balsa::obs
