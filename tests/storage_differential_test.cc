// Differential test: the chunked MVCC store vs. a naive reference model.
//
// Each seed drives a randomized mutation stream — appends, swap-remove
// deletes, cell-update batches, occasional full re-installs — through both
// the Database (chunked columns, O(batch) publication, COW chunks) and a
// plain std::vector<std::vector<int64_t>> model that re-applies the same
// operations the obvious way. After every publication the pinned snapshot
// must agree with the model bitwise: sampled rows each step, full columns
// plus hash-index lookups and executor scans (index / full-scan /
// chunk-skip / parallel-morsel paths, which must all be identical) at
// checkpoints. One table is never installed and grows only by appends,
// exercising the schema-width materialization path.
//
// Values include NULLs (exactly -1) and other negatives, so the min/max
// chunk summaries, hash indexes, and filter loops are all forced to tell
// the two apart. Zero divergence over >= 8 seeds x >= 1500 steps.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/exec/executor.h"
#include "src/plan/query_builder.h"
#include "src/storage/column_store.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

#if defined(__SANITIZE_THREAD__)
#define BALSA_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define BALSA_TSAN_BUILD 1
#endif
#endif

namespace balsa {
namespace {

#ifdef BALSA_TSAN_BUILD
constexpr int kStepsPerSeed = 300;  // instrumented build: keep CI fast
#else
constexpr int kStepsPerSeed = 1500;
#endif
constexpr int kNumSeeds = 8;
constexpr int kNumColumns = 3;
constexpr int kCheckpointEvery = 100;
/// Values land in [-2, kDomain); -1 is NULL, -2 is a real negative.
constexpr int64_t kDomain = 200;

Schema DiffSchema() {
  Schema schema;
  auto col = [](const char* name) {
    ColumnDef c;
    c.name = name;
    c.kind = ColumnKind::kAttribute;
    c.domain_size = kDomain;
    return c;
  };
  // Table 0 is installed and mutated; table 1 is never installed and grows
  // only by appends.
  EXPECT_TRUE(
      schema.AddTable({"base", 16, {col("a"), col("b"), col("c")}}).ok());
  EXPECT_TRUE(
      schema.AddTable({"fresh", 16, {col("a"), col("b"), col("c")}}).ok());
  return schema;
}

/// The reference model: the same table as flat vectors, mutated the
/// straightforward way.
struct RefTable {
  std::vector<std::vector<int64_t>> cols =
      std::vector<std::vector<int64_t>>(kNumColumns);

  int64_t rows() const { return static_cast<int64_t>(cols[0].size()); }

  void Append(const std::vector<std::vector<int64_t>>& new_rows) {
    for (const auto& row : new_rows) {
      for (int c = 0; c < kNumColumns; ++c) {
        cols[static_cast<size_t>(c)].push_back(row[static_cast<size_t>(c)]);
      }
    }
  }

  /// Swap-remove with the store's contract: ids applied in descending
  /// order, each freed slot filled by the then-last row.
  void Remove(std::vector<int64_t> ids) {
    std::sort(ids.begin(), ids.end(), std::greater<int64_t>());
    for (int64_t id : ids) {
      for (auto& col : cols) {
        col[static_cast<size_t>(id)] = col.back();
        col.pop_back();
      }
    }
  }

  void Set(int column, const std::vector<std::pair<int64_t, int64_t>>& ups) {
    for (const auto& [row, value] : ups) {
      cols[static_cast<size_t>(column)][static_cast<size_t>(row)] = value;
    }
  }
};

int64_t RandomValue(Rng* rng) {
  return rng->UniformInt(-2, kDomain - 1);  // includes NULL (-1) and -2
}

std::vector<std::vector<int64_t>> RandomRows(Rng* rng, int n) {
  std::vector<std::vector<int64_t>> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    std::vector<int64_t> row;
    for (int c = 0; c < kNumColumns; ++c) row.push_back(RandomValue(rng));
    rows.push_back(std::move(row));
  }
  return rows;
}

/// Cheap per-step check: row counts plus a handful of sampled cells.
void CheckSampled(const Snapshot& snap, int t, const RefTable& ref,
                  Rng* rng, int64_t* divergences) {
  if (snap.row_count(t) != ref.rows()) {
    (*divergences)++;
    return;
  }
  if (ref.rows() == 0) return;
  for (int s = 0; s < 16; ++s) {
    int64_t row = static_cast<int64_t>(
        rng->Uniform(static_cast<uint64_t>(ref.rows())));
    int c = static_cast<int>(rng->Uniform(kNumColumns));
    if (snap.column(t, c)[row] !=
        ref.cols[static_cast<size_t>(c)][static_cast<size_t>(row)]) {
      (*divergences)++;
    }
  }
}

/// Full bitwise check: every cell, hash-index lookups, and executor scans
/// through every code path (index, full scan, skipping on/off, serial and
/// parallel morsels) against reference-computed answers.
void CheckFull(const Schema& schema, const Database& db, int t,
               const RefTable& ref, Rng* rng, ThreadPool* pool,
               int64_t* divergences) {
  Snapshot snap = db.GetSnapshot();
  ASSERT_EQ(snap.row_count(t), ref.rows());
  for (int c = 0; c < kNumColumns; ++c) {
    if (snap.column(t, c).Materialize() != ref.cols[static_cast<size_t>(c)]) {
      (*divergences)++;
    }
  }
  if (ref.rows() == 0) return;

  // Hash index vs. a reference scan (ascending ids; NULL never indexed).
  const int idx_col = static_cast<int>(rng->Uniform(kNumColumns));
  const int64_t idx_val = RandomValue(rng);
  std::vector<uint32_t> expected_ids;
  const auto& ref_col = ref.cols[static_cast<size_t>(idx_col)];
  for (size_t r = 0; r < ref_col.size(); ++r) {
    if (ref_col[r] == idx_val && !IsNull(idx_val)) {
      expected_ids.push_back(static_cast<uint32_t>(r));
    }
  }
  if (snap.index(t, idx_col).Lookup(idx_val) != expected_ids) {
    (*divergences)++;
  }

  // Executor scans: kEq + kGe conjunction, expected answer from the model.
  const int64_t eq_val = rng->UniformInt(0, kDomain / 4);  // keep selective
  const int64_t ge_val = rng->UniformInt(-2, kDomain - 1);
  QueryBuilder builder(&schema, "diff");
  auto query = builder.From(t == 0 ? "base" : "fresh", "x")
                   .Filter("x.a", PredOp::kEq, eq_val)
                   .Filter("x.b", PredOp::kGe, ge_val)
                   .Build();
  ASSERT_TRUE(query.ok());
  std::vector<uint32_t> expected_rows;
  for (size_t r = 0; r < ref.cols[0].size(); ++r) {
    if (ref.cols[0][r] == eq_val && !IsNull(ref.cols[1][r]) &&
        ref.cols[1][r] >= ge_val) {
      expected_rows.push_back(static_cast<uint32_t>(r));
    }
  }
  for (bool use_index : {true, false}) {
    for (bool skip : {true, false}) {
      for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), pool}) {
        ExecutorOptions options;
        options.use_index_for_eq = use_index;
        options.use_chunk_skipping = skip;
        options.pool = p;
        options.morsel_chunks = 1;  // force morsel boundaries even when small
        Executor executor(snap, options);
        auto result = executor.Scan(*query, 0);
        ASSERT_TRUE(result.ok());
        if (result->tuples[0] != expected_rows) (*divergences)++;
      }
    }
  }
}

void RunSeed(uint64_t seed, ThreadPool* pool) {
  Schema schema = DiffSchema();
  Database db(schema);
  RefTable refs[2];
  Rng rng(seed);

  // Install table 0 big enough to span several chunks; table 1 starts
  // empty and is only ever appended to.
  {
    const int64_t rows = 2 * kChunkRows + 700;
    TableData data;
    data.row_count = rows;
    data.columns.resize(kNumColumns);
    for (int c = 0; c < kNumColumns; ++c) {
      for (int64_t r = 0; r < rows; ++r) {
        data.columns[static_cast<size_t>(c)].push_back(RandomValue(&rng));
      }
      refs[0].cols[static_cast<size_t>(c)] =
          data.columns[static_cast<size_t>(c)];
    }
    ASSERT_TRUE(db.SetTableData(0, std::move(data)).ok());
  }

  int64_t divergences = 0;
  for (int step = 0; step < kStepsPerSeed; ++step) {
    // Table 1 only appends; table 0 gets the full mutation mix.
    const int t = rng.Bernoulli(0.25) ? 1 : 0;
    RefTable& ref = refs[t];
    const uint64_t op = t == 1 ? 0 : rng.Uniform(100);
    if (op < 35) {
      // Append 1..64 rows (appends slightly outweigh deletes, so tables
      // drift across chunk boundaries over the run).
      auto rows = RandomRows(&rng, static_cast<int>(rng.Uniform(64)) + 1);
      ASSERT_TRUE(db.AppendRows(t, rows).ok());
      ref.Append(rows);
    } else if (op < 65 && ref.rows() > 0) {
      // Remove up to 48 distinct rows.
      const int64_t n = ref.rows();
      std::vector<int64_t> ids;
      for (int i = 0; i < 48 && static_cast<int64_t>(ids.size()) < n; ++i) {
        int64_t id =
            static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(n)));
        if (std::find(ids.begin(), ids.end(), id) == ids.end()) {
          ids.push_back(id);
        }
      }
      ASSERT_TRUE(db.RemoveRows(t, ids).ok());
      ref.Remove(ids);
    } else if (ref.rows() > 0) {
      // Update up to 32 cells of one column.
      const int column = static_cast<int>(rng.Uniform(kNumColumns));
      std::vector<std::pair<int64_t, int64_t>> updates;
      for (int i = 0; i < static_cast<int>(rng.Uniform(32)) + 1; ++i) {
        updates.push_back(
            {static_cast<int64_t>(
                 rng.Uniform(static_cast<uint64_t>(ref.rows()))),
             RandomValue(&rng)});
      }
      ASSERT_TRUE(db.SetValues(t, column, updates).ok());
      ref.Set(column, updates);
    }

    Snapshot snap = db.GetSnapshot();
    CheckSampled(snap, t, ref, &rng, &divergences);
    ASSERT_EQ(divergences, 0) << "seed " << seed << " step " << step;
    if ((step + 1) % kCheckpointEvery == 0) {
      for (int table = 0; table < 2; ++table) {
        CheckFull(schema, db, table, refs[table], &rng, pool, &divergences);
        ASSERT_EQ(divergences, 0)
            << "seed " << seed << " checkpoint at step " << step << " table "
            << table;
      }
    }
  }
  for (int table = 0; table < 2; ++table) {
    CheckFull(schema, db, table, refs[table], &rng, pool, &divergences);
  }
  EXPECT_EQ(divergences, 0) << "seed " << seed;
}

TEST(StorageDifferentialTest, RandomizedStreamsMatchReferenceModel) {
  ThreadPool pool(4);
  for (uint64_t seed = 1; seed <= kNumSeeds; ++seed) {
    RunSeed(seed, &pool);
  }
}

}  // namespace
}  // namespace balsa
