#include "src/sql/parser.h"

#include <gtest/gtest.h>

#include "src/optimizer/dp_optimizer.h"
#include "test_util.h"

namespace balsa {
namespace {

class SqlParserTest : public ::testing::Test {
 protected:
  SqlParserTest() : fixture_(testing::MakeStarFixture()) {}
  testing::StarFixture fixture_;
};

TEST_F(SqlParserTest, ParsesStarJoin) {
  auto q = ParseSql(fixture_.schema(),
                    "SELECT * FROM sales s, customer c, product p "
                    "WHERE s.customer_id = c.id AND s.product_id = p.id "
                    "AND c.region = 2 AND p.category < 5;");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->num_relations(), 3);
  EXPECT_EQ(q->joins().size(), 2u);
  EXPECT_EQ(q->filters().size(), 2u);
  EXPECT_EQ(q->filters()[0].op, PredOp::kEq);
  EXPECT_EQ(q->filters()[1].op, PredOp::kLt);
  EXPECT_EQ(q->filters()[1].value, 5);
}

TEST_F(SqlParserTest, AliasDefaultsToTableName) {
  auto q = ParseSql(fixture_.schema(),
                    "SELECT * FROM sales, customer "
                    "WHERE sales.customer_id = customer.id");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->relations()[0].alias, "sales");
}

TEST_F(SqlParserTest, AsKeywordOptional) {
  auto q1 = ParseSql(fixture_.schema(),
                     "SELECT * FROM sales AS s, customer AS c "
                     "WHERE s.customer_id = c.id");
  auto q2 = ParseSql(fixture_.schema(),
                     "SELECT * FROM sales s, customer c "
                     "WHERE s.customer_id = c.id");
  ASSERT_TRUE(q1.ok() && q2.ok());
  EXPECT_EQ(q1->relations()[0].alias, q2->relations()[0].alias);
}

TEST_F(SqlParserTest, CaseInsensitiveKeywords) {
  auto q = ParseSql(fixture_.schema(),
                    "select * from SALES s where s.amount > 10");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->filters()[0].op, PredOp::kGt);
}

TEST_F(SqlParserTest, InList) {
  auto q = ParseSql(fixture_.schema(),
                    "SELECT * FROM customer c WHERE c.region IN (1, 3, 5)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->filters().size(), 1u);
  EXPECT_EQ(q->filters()[0].op, PredOp::kIn);
  EXPECT_EQ(q->filters()[0].in_values, (std::vector<int64_t>{1, 3, 5}));
}

TEST_F(SqlParserTest, AllComparisonOperators) {
  struct Case {
    const char* op;
    PredOp expected;
  };
  for (const Case& c : {Case{"=", PredOp::kEq}, Case{"<", PredOp::kLt},
                        Case{"<=", PredOp::kLe}, Case{">", PredOp::kGt},
                        Case{">=", PredOp::kGe}, Case{"<>", PredOp::kNe},
                        Case{"!=", PredOp::kNe}}) {
    auto q = ParseSql(fixture_.schema(),
                      std::string("SELECT * FROM sales s WHERE s.amount ") +
                          c.op + " 10");
    ASSERT_TRUE(q.ok()) << c.op << ": " << q.status().ToString();
    EXPECT_EQ(q->filters()[0].op, c.expected) << c.op;
  }
}

TEST_F(SqlParserTest, ProjectionListAccepted) {
  auto q = ParseSql(fixture_.schema(),
                    "SELECT s.id, c.region FROM sales s, customer c "
                    "WHERE s.customer_id = c.id");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
}

TEST_F(SqlParserTest, NegativeLiterals) {
  auto q = ParseSql(fixture_.schema(),
                    "SELECT * FROM sales s WHERE s.amount > -5");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->filters()[0].value, -5);
}

TEST_F(SqlParserTest, SelfJoinViaAliases) {
  auto q = ParseSql(fixture_.schema(),
                    "SELECT * FROM sales s1, sales s2, customer c "
                    "WHERE s1.customer_id = c.id AND s2.customer_id = c.id");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->num_relations(), 3);
}

TEST_F(SqlParserTest, Errors) {
  // Missing SELECT.
  EXPECT_FALSE(ParseSql(fixture_.schema(), "FROM sales s").ok());
  // Unknown table.
  EXPECT_FALSE(
      ParseSql(fixture_.schema(), "SELECT * FROM bogus b").ok());
  // Unknown column.
  EXPECT_FALSE(ParseSql(fixture_.schema(),
                        "SELECT * FROM sales s WHERE s.bogus = 1").ok());
  // Disconnected join graph.
  EXPECT_FALSE(
      ParseSql(fixture_.schema(), "SELECT * FROM sales s, customer c").ok());
  // Trailing garbage.
  EXPECT_FALSE(ParseSql(fixture_.schema(),
                        "SELECT * FROM sales s WHERE s.amount > 1 garbage")
                   .ok());
  // Column-to-column with non-equality operator.
  EXPECT_FALSE(ParseSql(fixture_.schema(),
                        "SELECT * FROM sales s, customer c "
                        "WHERE s.customer_id < c.id").ok());
}

TEST_F(SqlParserTest, RoundTripsThroughOptimizer) {
  auto q = ParseSql(fixture_.schema(),
                    "SELECT * FROM sales s, customer c, product p, store st "
                    "WHERE s.customer_id = c.id AND s.product_id = p.id "
                    "AND s.store_id = st.id AND c.region = 2");
  ASSERT_TRUE(q.ok());
  q->set_id(1);
  CoutCostModel cout(fixture_.estimator, &fixture_.schema());
  DpOptimizer dp(&fixture_.schema(), &cout);
  auto plan = dp.Optimize(*q);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->plan.RootTables(), q->AllTables());
}

}  // namespace
}  // namespace balsa
