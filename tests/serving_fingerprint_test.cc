// The serving layer's canonical query fingerprint: invariant to FROM-list
// order and alias spelling, sensitive to everything that changes the
// planning problem (tables, join graph, filter predicates and constants).
#include "src/serving/query_fingerprint.h"

#include <set>

#include <gtest/gtest.h>

#include "src/sql/parser.h"
#include "test_util.h"

namespace balsa {
namespace {

class FingerprintTest : public ::testing::Test {
 protected:
  FingerprintTest() : schema_(testing::MakeStarSchema()) {}

  Query Must(StatusOr<Query> q) {
    BALSA_CHECK(q.ok(), q.status().ToString());
    return std::move(q).value();
  }

  Schema schema_;
};

TEST_F(FingerprintTest, InvariantToFromOrderAndAliasNames) {
  Query a = Must(QueryBuilder(&schema_, "a")
                     .From("sales", "s")
                     .From("customer", "c")
                     .From("product", "p")
                     .JoinEq("s.customer_id", "c.id")
                     .JoinEq("s.product_id", "p.id")
                     .Filter("c.region", PredOp::kEq, 2)
                     .Build());
  // Same query: relations listed in reverse with entirely different aliases.
  Query b = Must(QueryBuilder(&schema_, "b")
                     .From("product", "prod")
                     .From("customer", "cust")
                     .From("sales", "fact")
                     .JoinEq("fact.product_id", "prod.id")
                     .JoinEq("cust.id", "fact.customer_id")  // sides swapped
                     .Filter("cust.region", PredOp::kEq, 2)
                     .Build());
  EXPECT_EQ(QueryFingerprint(a), QueryFingerprint(b));
}

TEST_F(FingerprintTest, SqlAliasRenamingHitsTheSameSlot) {
  Query a = Must(ParseSql(schema_,
                          "SELECT * FROM sales s, customer c "
                          "WHERE s.customer_id = c.id AND c.region = 4"));
  Query b = Must(ParseSql(schema_,
                          "SELECT * FROM customer x, sales y "
                          "WHERE y.customer_id = x.id AND x.region = 4"));
  EXPECT_EQ(QueryFingerprint(a), QueryFingerprint(b));
}

TEST_F(FingerprintTest, FilterConstantsChangeTheFingerprint) {
  auto with_region = [&](int64_t region) {
    return Must(QueryBuilder(&schema_, "q")
                    .From("sales", "s")
                    .From("customer", "c")
                    .JoinEq("s.customer_id", "c.id")
                    .Filter("c.region", PredOp::kEq, region)
                    .Build());
  };
  // Different constants select different rows: they must plan (and cache)
  // separately.
  EXPECT_NE(QueryFingerprint(with_region(2)), QueryFingerprint(with_region(3)));
}

TEST_F(FingerprintTest, FilterOperatorsChangeTheFingerprint) {
  auto with_op = [&](PredOp op) {
    return Must(QueryBuilder(&schema_, "q")
                    .From("sales", "s")
                    .From("customer", "c")
                    .JoinEq("s.customer_id", "c.id")
                    .Filter("c.region", op, 2)
                    .Build());
  };
  EXPECT_NE(QueryFingerprint(with_op(PredOp::kEq)),
            QueryFingerprint(with_op(PredOp::kLt)));
}

TEST_F(FingerprintTest, InListOrderIsIrrelevant) {
  auto with_in = [&](std::vector<int64_t> values) {
    return Must(QueryBuilder(&schema_, "q")
                    .From("sales", "s")
                    .From("customer", "c")
                    .JoinEq("s.customer_id", "c.id")
                    .FilterIn("c.region", std::move(values))
                    .Build());
  };
  EXPECT_EQ(QueryFingerprint(with_in({1, 5, 9})),
            QueryFingerprint(with_in({9, 1, 5})));
  EXPECT_NE(QueryFingerprint(with_in({1, 5, 9})),
            QueryFingerprint(with_in({1, 5, 8})));
}

TEST_F(FingerprintTest, JoinGraphShapeMatters) {
  Query chain = Must(QueryBuilder(&schema_, "chain")
                         .From("sales", "s")
                         .From("customer", "c")
                         .From("product", "p")
                         .JoinEq("s.customer_id", "c.id")
                         .JoinEq("s.product_id", "p.id")
                         .Build());
  Query pair = Must(QueryBuilder(&schema_, "pair")
                        .From("sales", "s")
                        .From("customer", "c")
                        .JoinEq("s.customer_id", "c.id")
                        .Build());
  EXPECT_NE(QueryFingerprint(chain), QueryFingerprint(pair));
}

TEST_F(FingerprintTest, SelfJoinSidesAreDistinguishedByFilters) {
  // Two occurrences of the same table whose *filters* differ: swapping
  // which occurrence carries the filter changes which side of the join
  // graph is selective, i.e. the planning problem — via the relation
  // colors, since aliases themselves are never hashed.
  Query filtered_left = Must(QueryBuilder(&schema_, "l")
                                 .From("sales", "a")
                                 .From("sales", "b")
                                 .From("customer", "c")
                                 .JoinEq("a.customer_id", "c.id")
                                 .JoinEq("b.customer_id", "c.id")
                                 .Filter("a.amount", PredOp::kLt, 10)
                                 .Build());
  Query filtered_both = Must(QueryBuilder(&schema_, "r")
                                 .From("sales", "a")
                                 .From("sales", "b")
                                 .From("customer", "c")
                                 .JoinEq("a.customer_id", "c.id")
                                 .JoinEq("b.customer_id", "c.id")
                                 .Filter("a.amount", PredOp::kLt, 10)
                                 .Filter("b.amount", PredOp::kLt, 10)
                                 .Build());
  EXPECT_NE(QueryFingerprint(filtered_left), QueryFingerprint(filtered_both));

  // And the symmetric rename (filter on b instead of a) is the *same*
  // problem, so it must collide on purpose.
  Query filtered_right = Must(QueryBuilder(&schema_, "r2")
                                  .From("sales", "a")
                                  .From("sales", "b")
                                  .From("customer", "c")
                                  .JoinEq("a.customer_id", "c.id")
                                  .JoinEq("b.customer_id", "c.id")
                                  .Filter("b.amount", PredOp::kLt, 10)
                                  .Build());
  EXPECT_EQ(QueryFingerprint(filtered_left),
            QueryFingerprint(filtered_right));
}

TEST_F(FingerprintTest, CanonicalRanksAlignAcrossFromOrderings) {
  Query a = Must(QueryBuilder(&schema_, "a")
                     .From("sales", "s")
                     .From("customer", "c")
                     .From("product", "p")
                     .JoinEq("s.customer_id", "c.id")
                     .JoinEq("s.product_id", "p.id")
                     .Filter("c.region", PredOp::kEq, 2)
                     .Build());
  Query b = Must(QueryBuilder(&schema_, "b")
                     .From("product", "prod")
                     .From("sales", "fact")
                     .From("customer", "cust")
                     .JoinEq("fact.customer_id", "cust.id")
                     .JoinEq("fact.product_id", "prod.id")
                     .Filter("cust.region", PredOp::kEq, 2)
                     .Build());
  CanonicalQuery ca = CanonicalizeQuery(a);
  CanonicalQuery cb = CanonicalizeQuery(b);
  ASSERT_EQ(ca.fingerprint, cb.fingerprint);
  // Structurally corresponding relations get the same canonical rank,
  // whatever their FROM position: find each table by schema index.
  auto rank_of_table = [&](const Query& q, const CanonicalQuery& c,
                           const char* table) {
    int idx = schema_.TableIndex(table);
    for (int r = 0; r < q.num_relations(); ++r) {
      if (q.relations()[r].table_idx == idx) {
        return c.canonical_rank[static_cast<size_t>(r)];
      }
    }
    return -1;
  };
  for (const char* table : {"sales", "customer", "product"}) {
    EXPECT_EQ(rank_of_table(a, ca, table), rank_of_table(b, cb, table))
        << table;
  }
}

TEST_F(FingerprintTest, RemapPlanRelationsRoundTrips) {
  Plan plan;
  int s = plan.AddScan(0, ScanOp::kSeqScan);
  int c = plan.AddScan(1, ScanOp::kIndexScan);
  int sc = plan.AddJoin(s, c, JoinOp::kHashJoin);
  int p = plan.AddScan(2, ScanOp::kSeqScan);
  plan.AddJoin(sc, p, JoinOp::kIndexNLJoin);

  std::vector<int> map = {2, 0, 1};
  Plan mapped = RemapPlanRelations(plan, map);
  EXPECT_TRUE(mapped.Validate());
  EXPECT_EQ(mapped.node(0).relation, 2);
  EXPECT_EQ(mapped.node(1).relation, 0);
  EXPECT_EQ(mapped.node(1).scan_op, ScanOp::kIndexScan);
  EXPECT_EQ(mapped.node(3).relation, 1);
  EXPECT_EQ(mapped.node(2).join_op, JoinOp::kHashJoin);
  EXPECT_EQ(mapped.RootTables(), TableSet::FirstN(3));

  Plan back = RemapPlanRelations(mapped, InversePermutation(map));
  EXPECT_EQ(back.Fingerprint(), plan.Fingerprint());
}

TEST_F(FingerprintTest, DistinctAcrossAWholeWorkloadScale) {
  // Sanity against accidental collisions: many near-miss variants of one
  // join template must all get distinct fingerprints.
  std::set<uint64_t> seen;
  for (int64_t region = 0; region < 10; ++region) {
    for (int64_t category = 0; category < 8; ++category) {
      Query q = Must(QueryBuilder(&schema_, "v")
                         .From("sales", "s")
                         .From("customer", "c")
                         .From("product", "p")
                         .JoinEq("s.customer_id", "c.id")
                         .JoinEq("s.product_id", "p.id")
                         .Filter("c.region", PredOp::kEq, region)
                         .Filter("p.category", PredOp::kEq, category)
                         .Build());
      seen.insert(QueryFingerprint(q));
    }
  }
  EXPECT_EQ(seen.size(), 80u);
}

}  // namespace
}  // namespace balsa
