#include "src/stats/card_oracle.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/stats/oracle_estimator.h"
#include "test_util.h"

namespace balsa {
namespace {

class CardOracleTest : public ::testing::Test {
 protected:
  CardOracleTest()
      : fixture_(testing::MakeStarFixture()),
        query_(testing::MakeStarQuery(fixture_.schema())) {}

  testing::StarFixture fixture_;
  Query query_;
};

TEST_F(CardOracleTest, SingleRelationMatchesExecutor) {
  Executor executor(fixture_.db.get());
  auto scan = executor.Scan(query_, 1);
  auto card = fixture_.oracle->Cardinality(query_, TableSet::Single(1));
  ASSERT_TRUE(card.ok());
  EXPECT_EQ(card->rows, static_cast<double>(scan->NumRows()));
  EXPECT_FALSE(card->capped);
}

TEST_F(CardOracleTest, JoinCardinalityMatchesExecutor) {
  Executor executor(fixture_.db.get());
  auto s = executor.Scan(query_, 0);
  auto c = executor.Scan(query_, 1);
  auto j = executor.Join(query_, *s, *c);
  auto card = fixture_.oracle->Cardinality(query_,
                                           TableSet::Single(0).With(1));
  ASSERT_TRUE(card.ok());
  EXPECT_EQ(card->rows, static_cast<double>(j->NumRows()));
}

TEST_F(CardOracleTest, CachesResults) {
  TableSet set = query_.AllTables();
  auto first = fixture_.oracle->Cardinality(query_, set);
  ASSERT_TRUE(first.ok());
  int64_t execs = fixture_.oracle->NumExecutions();
  auto second = fixture_.oracle->Cardinality(query_, set);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(fixture_.oracle->NumExecutions(), execs);  // no new executions
  EXPECT_EQ(first->rows, second->rows);
}

TEST_F(CardOracleTest, RejectsQueriesWithoutIds) {
  Query no_id = query_;
  no_id.set_id(-1);
  auto card = fixture_.oracle->Cardinality(no_id, TableSet::Single(0));
  EXPECT_FALSE(card.ok());
}

TEST_F(CardOracleTest, RejectsDisconnectedSets) {
  auto card = fixture_.oracle->Cardinality(query_,
                                           TableSet::Single(1).With(2));
  EXPECT_FALSE(card.ok());
}

TEST_F(CardOracleTest, PlanCardinalitiesCoverAllNodes) {
  Plan plan;
  int s = plan.AddScan(0, ScanOp::kSeqScan);
  int c = plan.AddScan(1, ScanOp::kSeqScan);
  int sc = plan.AddJoin(s, c, JoinOp::kHashJoin);
  int p = plan.AddScan(2, ScanOp::kSeqScan);
  plan.AddJoin(sc, p, JoinOp::kHashJoin);

  auto cards = fixture_.oracle->PlanCardinalities(query_, plan);
  ASSERT_TRUE(cards.ok());
  ASSERT_EQ(cards->size(), static_cast<size_t>(plan.num_nodes()));
  // Each node's cardinality matches a direct oracle query.
  for (int i = 0; i < plan.num_nodes(); ++i) {
    auto direct = fixture_.oracle->Cardinality(query_, plan.node(i).tables);
    EXPECT_EQ((*cards)[i].rows, direct->rows) << "node " << i;
  }
}

TEST_F(CardOracleTest, CardinalityIsPlanShapeInvariant) {
  // Any join order over the same table set yields the same cardinality.
  auto c1 = fixture_.oracle->Cardinality(query_, query_.AllTables());
  // Force recomputation through a different path: new oracle, different
  // stepwise order comes from its smallest-first heuristic on a plan walk.
  CardOracle fresh(fixture_.db.get());
  Plan plan;
  int st = plan.AddScan(3, ScanOp::kSeqScan);
  int s = plan.AddScan(0, ScanOp::kSeqScan);
  int j1 = plan.AddJoin(st, s, JoinOp::kHashJoin);
  int p = plan.AddScan(2, ScanOp::kSeqScan);
  int j2 = plan.AddJoin(j1, p, JoinOp::kHashJoin);
  int c = plan.AddScan(1, ScanOp::kSeqScan);
  plan.AddJoin(j2, c, JoinOp::kHashJoin);
  auto cards = fresh.PlanCardinalities(query_, plan);
  ASSERT_TRUE(cards.ok());
  EXPECT_EQ(cards->back().rows, c1->rows);
}

TEST_F(CardOracleTest, ShardedMemoMatchesSingleThreadedResults) {
  // Single-threaded ground truth for every connected subset.
  std::vector<TableSet> sets;
  for (uint64_t bits = 1; bits < 16; ++bits) {
    TableSet set(bits);
    if (query_.IsConnected(set)) sets.push_back(set);
  }
  std::vector<double> baseline(sets.size());
  for (size_t i = 0; i < sets.size(); ++i) {
    auto card = fixture_.oracle->Cardinality(query_, sets[i]);
    ASSERT_TRUE(card.ok());
    baseline[i] = card->rows;
  }

  // Many threads hammering a *fresh* oracle (cold shards, every key racing)
  // must reproduce the exact same values: cardinalities are pure functions
  // of (query, set), so sharding the memo cannot change any result.
  CardOracle fresh(fixture_.db.get());
  constexpr int kThreads = 8;
  std::vector<std::vector<double>> got(
      kThreads, std::vector<double>(sets.size(), -1));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < sets.size(); ++i) {
        size_t pick = (i + static_cast<size_t>(t)) % sets.size();
        auto card = fresh.Cardinality(query_, sets[pick]);
        BALSA_CHECK(card.ok(), card.status().ToString());
        got[static_cast<size_t>(t)][pick] = card->rows;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(got[static_cast<size_t>(t)], baseline) << "thread " << t;
  }
  EXPECT_EQ(fresh.CacheSize(), fixture_.oracle->CacheSize());
}

TEST_F(CardOracleTest, GenerationCountsBumps) {
  CardOracle oracle(fixture_.db.get());
  EXPECT_EQ(oracle.generation(), 0);
  oracle.BumpGeneration();
  oracle.BumpGeneration();
  EXPECT_EQ(oracle.generation(), 2);
  // Bumping versions the statistics regime; the memo (true cardinalities)
  // is untouched.
  ASSERT_TRUE(oracle.Cardinality(query_, TableSet::Single(0)).ok());
  size_t cached = oracle.CacheSize();
  oracle.BumpGeneration();
  EXPECT_EQ(oracle.CacheSize(), cached);
}

TEST_F(CardOracleTest, MutationExpiresMemoizedCardinalitiesOnItsOwn) {
  CardOracle oracle(fixture_.db.get());
  TableSet sales = TableSet::Single(0);  // star query lists sales first
  auto before = oracle.Cardinality(query_, sales);
  ASSERT_TRUE(before.ok());
  EXPECT_GT(oracle.CacheSize(), 0u);
  const uint64_t epoch_before = oracle.data_epoch();

  // Grow the sales table. Memo entries are tagged with the publication
  // epoch of the snapshot they were measured on, so the mutation expires
  // them with no manual invalidation call — a generation bump is about the
  // statistics regime and plays no part here.
  int sales_table = fixture_.schema().TableIndex("sales");
  TableData data = fixture_.db->CopyTableData(sales_table);
  std::vector<int64_t> row(data.columns.size(), 1);
  row[0] = data.row_count;  // fresh PK
  ASSERT_TRUE(fixture_.db->AppendRows(sales_table, {row, row}).ok());

  EXPECT_GT(oracle.data_epoch(), epoch_before);
  EXPECT_EQ(oracle.CacheSize(), 0u);  // everything pre-mutation is stale
  auto fresh = oracle.Cardinality(query_, sales);
  ASSERT_TRUE(fresh.ok());
  EXPECT_GT(fresh->rows, before->rows);  // never served the stale count
}

TEST(OracleEstimatorTest, MatchesOracle) {
  auto fixture = testing::MakeStarFixture();
  Query query = testing::MakeStarQuery(fixture.schema());
  OracleCardinalityEstimator est(fixture.db.get(), fixture.oracle.get());
  auto direct = fixture.oracle->Cardinality(query, TableSet::Single(0).With(1));
  EXPECT_EQ(est.EstimateJoinRows(query, TableSet::Single(0).With(1)),
            direct->rows);
  double sel = est.EstimateSelectivity(query, 1);
  EXPECT_GT(sel, 0);
  EXPECT_LT(sel, 1);  // customer has a filter
}

}  // namespace
}  // namespace balsa
