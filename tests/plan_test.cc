#include "src/plan/plan.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace balsa {
namespace {

Plan LeftDeep3(JoinOp op1 = JoinOp::kHashJoin,
               JoinOp op2 = JoinOp::kHashJoin) {
  Plan p;
  int a = p.AddScan(0, ScanOp::kSeqScan);
  int b = p.AddScan(1, ScanOp::kSeqScan);
  int ab = p.AddJoin(a, b, op1);
  int c = p.AddScan(2, ScanOp::kIndexScan);
  p.AddJoin(ab, c, op2);
  return p;
}

TEST(PlanTest, BuildAndShape) {
  Plan p = LeftDeep3();
  EXPECT_EQ(p.num_nodes(), 5);
  EXPECT_EQ(p.NumJoins(), 2);
  EXPECT_TRUE(p.IsLeftDeep());
  EXPECT_FALSE(p.IsBushy());
  EXPECT_EQ(p.RootTables(), TableSet::FirstN(3));
  EXPECT_EQ(p.Depth(), 3);  // node depth: leaf=1, two stacked joins=3
  EXPECT_TRUE(p.Validate());
}

TEST(PlanTest, BushyDetection) {
  Plan p;
  int a = p.AddScan(0, ScanOp::kSeqScan);
  int b = p.AddScan(1, ScanOp::kSeqScan);
  int c = p.AddScan(2, ScanOp::kSeqScan);
  int d = p.AddScan(3, ScanOp::kSeqScan);
  int ab = p.AddJoin(a, b, JoinOp::kHashJoin);
  int cd = p.AddJoin(c, d, JoinOp::kMergeJoin);
  p.AddJoin(ab, cd, JoinOp::kHashJoin);
  EXPECT_TRUE(p.IsBushy());
  EXPECT_FALSE(p.IsLeftDeep());
  EXPECT_TRUE(p.Validate());
}

TEST(PlanTest, RightDeepIsNotBushy) {
  Plan p;
  int a = p.AddScan(0, ScanOp::kSeqScan);
  int b = p.AddScan(1, ScanOp::kSeqScan);
  int c = p.AddScan(2, ScanOp::kSeqScan);
  int bc = p.AddJoin(b, c, JoinOp::kHashJoin);
  p.AddJoin(a, bc, JoinOp::kHashJoin);
  EXPECT_FALSE(p.IsBushy());
  EXPECT_FALSE(p.IsLeftDeep());  // right child is a join
}

TEST(PlanTest, FingerprintSensitivity) {
  // Same structure, same ops -> equal fingerprints.
  EXPECT_EQ(LeftDeep3().Fingerprint(), LeftDeep3().Fingerprint());
  // Different join operator -> different fingerprint.
  EXPECT_NE(LeftDeep3().Fingerprint(),
            LeftDeep3(JoinOp::kMergeJoin).Fingerprint());
  // Different operator on the second join too.
  EXPECT_NE(LeftDeep3(JoinOp::kHashJoin, JoinOp::kNLJoin).Fingerprint(),
            LeftDeep3().Fingerprint());
}

TEST(PlanTest, FingerprintDistinguishesChildOrder) {
  Plan p1, p2;
  int a1 = p1.AddScan(0, ScanOp::kSeqScan);
  int b1 = p1.AddScan(1, ScanOp::kSeqScan);
  p1.AddJoin(a1, b1, JoinOp::kHashJoin);
  int b2 = p2.AddScan(1, ScanOp::kSeqScan);
  int a2 = p2.AddScan(0, ScanOp::kSeqScan);
  p2.AddJoin(b2, a2, JoinOp::kHashJoin);
  // Build/probe sides matter physically.
  EXPECT_NE(p1.Fingerprint(), p2.Fingerprint());
}

TEST(PlanTest, SubtreeFingerprintMatchesExtracted) {
  Plan p = LeftDeep3();
  // Node 2 is the (0 join 1) subtree.
  Plan sub = ExtractSubtree(p, 2);
  EXPECT_EQ(sub.Fingerprint(), p.Fingerprint(2));
  EXPECT_EQ(sub.RootTables(), TableSet::FirstN(2));
  EXPECT_TRUE(sub.Validate());
}

TEST(PlanTest, ComposeJoinMergesArenas) {
  Plan l;
  l.set_root(l.AddScan(0, ScanOp::kSeqScan));
  Plan r;
  r.set_root(r.AddScan(1, ScanOp::kSeqScan));
  Plan joined = ComposeJoin(l, r, JoinOp::kMergeJoin);
  EXPECT_EQ(joined.NumJoins(), 1);
  EXPECT_EQ(joined.RootTables(), TableSet::FirstN(2));
  EXPECT_TRUE(joined.Validate());
}

TEST(PlanTest, ComposeIndexNLRewritesInnerScan) {
  Plan l;
  l.set_root(l.AddScan(0, ScanOp::kSeqScan));
  Plan r;
  r.set_root(r.AddScan(1, ScanOp::kSeqScan));
  Plan joined = ComposeJoin(l, r, JoinOp::kIndexNLJoin);
  const PlanNode& root = joined.node(joined.root());
  ASSERT_TRUE(root.is_join);
  EXPECT_EQ(root.join_op, JoinOp::kIndexNLJoin);
  EXPECT_EQ(joined.node(root.right).scan_op, ScanOp::kIndexScan);
}

TEST(PlanTest, CountOps) {
  Plan p = LeftDeep3(JoinOp::kHashJoin, JoinOp::kIndexNLJoin);
  std::vector<int> joins, scans;
  p.CountOps(&joins, &scans);
  EXPECT_EQ(joins[static_cast<int>(JoinOp::kHashJoin)], 1);
  EXPECT_EQ(joins[static_cast<int>(JoinOp::kIndexNLJoin)], 1);
  EXPECT_EQ(joins[static_cast<int>(JoinOp::kMergeJoin)], 0);
  EXPECT_EQ(scans[static_cast<int>(ScanOp::kSeqScan)] +
                scans[static_cast<int>(ScanOp::kIndexScan)],
            3);
}

TEST(PlanTest, ToStringMentionsAliases) {
  auto fixture = testing::MakeStarFixture();
  Query q = testing::MakeStarQuery(fixture.schema());
  Plan p;
  int a = p.AddScan(0, ScanOp::kSeqScan);
  int b = p.AddScan(1, ScanOp::kSeqScan);
  p.AddJoin(a, b, JoinOp::kHashJoin);
  std::string s = p.ToString(q);
  EXPECT_NE(s.find("s"), std::string::npos);
  EXPECT_NE(s.find("HashJoin"), std::string::npos);
}

}  // namespace
}  // namespace balsa
