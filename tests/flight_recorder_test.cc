// Tests for the flight recorder's TraceStore: tail retention by
// construction (top-K min-heap + floor), the bounded error/capped outcome
// ring, deterministic reservoir sampling, lazy shell materialization on the
// hit path, late row-cap promotion, and the JSONL export. Also the
// trace-context edge cases the serving stack depends on: nested
// ScopedTraceContext restore order, a pool thread re-installing a context
// while the request completes and the store serializes (the TSan race),
// and a histogram exemplar that dangles after eviction. Runs under
// `ctest -L obs` (the TSan CI job).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace balsa::obs {
namespace {

constexpr uint64_t kFlightIdBit = uint64_t{1} << 63;

TraceStoreOptions Opts(int top_k, int reservoir, int max_outcomes,
                       uint64_t seed = 1) {
  TraceStoreOptions options;
  options.enabled = true;
  options.top_k = top_k;
  options.reservoir_size = reservoir;
  options.max_outcomes = max_outcomes;
  options.seed = seed;
  return options;
}

TraceCompletion Comp(double latency_us, const char* outcome = "hit") {
  TraceCompletion completion;
  completion.latency_us = latency_us;
  completion.outcome = outcome;
  completion.query_name = "q";
  return completion;
}

// Minimal JSON syntax check: quotes pair up (with escapes) and braces /
// brackets balance outside strings.
bool JsonParses(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string && !s.empty() && s.front() == '{';
}

TEST(TraceStoreTest, DisabledStoreIgnoresCompletions) {
  TraceStore store;  // enabled defaults to false
  EXPECT_EQ(store.OnComplete(nullptr, Comp(1e6, "miss")), 0u);
  store.PromoteCapped(nullptr, Comp(1e6, "miss"));
  EXPECT_TRUE(store.Retained().empty());
  EXPECT_EQ(store.completions(), 0);
}

TEST(TraceStoreTest, TopKRetainsTheSlowestByConstruction) {
  TraceStore store(Opts(/*top_k=*/4, /*reservoir=*/0, /*max_outcomes=*/0));
  // 1..100 in a scrambled (but deterministic) order: the heap must end up
  // holding exactly {97, 98, 99, 100} regardless of arrival order.
  for (int i = 0; i < 100; ++i) {
    const double latency = static_cast<double>((i * 37) % 100 + 1);
    store.OnComplete(nullptr, Comp(latency, "miss"));
  }
  std::multiset<double> kept;
  for (const RetainedTrace& entry : store.Retained()) {
    EXPECT_EQ(entry.reason, RetainReason::kTopK);
    kept.insert(entry.latency_us);
  }
  EXPECT_EQ(kept, (std::multiset<double>{97, 98, 99, 100}));

  RetainedTrace top;
  ASSERT_TRUE(store.MaxRetained(&top));
  EXPECT_EQ(top.latency_us, 100);

  const TraceStore::Stats stats = store.stats();
  EXPECT_EQ(stats.completions, 100);
  EXPECT_EQ(stats.retained_top_k, 4);
  EXPECT_GT(stats.evicted, 0);
}

TEST(TraceStoreTest, LazyShellMaterializedOnlyWhenRetained) {
  TraceStore store(Opts(/*top_k=*/2, /*reservoir=*/0, /*max_outcomes=*/0));
  // A null-trace (hit-path) completion that wins a top-K slot gets a
  // span-less shell materialized at admission.
  const uint64_t id = store.OnComplete(nullptr, Comp(100));
  ASSERT_NE(id, 0u);
  RetainedTrace entry;
  ASSERT_TRUE(store.FindTrace(id, &entry));
  ASSERT_NE(entry.trace, nullptr);
  EXPECT_EQ(entry.trace->id(), id);
  EXPECT_TRUE(entry.trace->spans().empty());

  // Fill the heap past it; a sub-floor completion is let go without ever
  // allocating (id 0 is the "no shell, no retention" signal).
  store.OnComplete(nullptr, Comp(200));
  store.OnComplete(nullptr, Comp(300));
  EXPECT_EQ(store.OnComplete(nullptr, Comp(50)), 0u);
  EXPECT_EQ(store.Retained().size(), 2u);
  EXPECT_FALSE(store.FindTrace(id, &entry));  // evicted by 200/300
}

TEST(TraceStoreTest, FlightIdsNeverCollideWithTracerIds) {
  TraceStore store(Opts(4, 0, 0));
  EXPECT_NE(store.StartTrace()->id() & kFlightIdBit, 0u);
  const uint64_t materialized = store.OnComplete(nullptr, Comp(10));
  EXPECT_NE(materialized & kFlightIdBit, 0u);

  RequestTracerOptions tracer_options;
  tracer_options.sample_every = 1;
  RequestTracer tracer(tracer_options);
  std::shared_ptr<Trace> sampled = tracer.MaybeStartTrace();
  ASSERT_NE(sampled, nullptr);
  EXPECT_EQ(sampled->id() & kFlightIdBit, 0u);
}

TEST(TraceStoreTest, OutcomeRingIsBoundedOldestEvicted) {
  TraceStore store(Opts(/*top_k=*/1, /*reservoir=*/0, /*max_outcomes=*/3));
  for (int i = 0; i < 5; ++i) {
    TraceCompletion completion = Comp(1.0, "error");
    completion.error = true;
    EXPECT_NE(store.OnComplete(nullptr, completion), 0u);
  }
  std::multiset<uint64_t> indices;
  for (const RetainedTrace& entry : store.Retained()) {
    EXPECT_EQ(entry.reason, RetainReason::kOutcome);
    EXPECT_TRUE(entry.error);
    indices.insert(entry.completion_index);
  }
  // The three newest completions survive; 1 and 2 were pushed out.
  EXPECT_EQ(indices, (std::multiset<uint64_t>{3, 4, 5}));
  EXPECT_GE(store.stats().evicted, 2);
}

TEST(TraceStoreTest, ReservoirIsDeterministicInSeedAndIndex) {
  // Two stores fed the identical completion stream retain the identical
  // reservoir — the coin flip is a pure function of (seed, normal index).
  auto run = [](uint64_t seed) {
    TraceStore store(Opts(/*top_k=*/1, /*reservoir=*/4, /*max_outcomes=*/0,
                          seed));
    store.OnComplete(nullptr, Comp(1000, "miss"));  // fills the heap
    for (int i = 0; i < 200; ++i) store.OnComplete(nullptr, Comp(1.0));
    std::multiset<uint64_t> indices;
    for (const RetainedTrace& entry : store.Retained()) {
      if (entry.reason == RetainReason::kReservoir) {
        indices.insert(entry.completion_index);
      }
    }
    return indices;
  };
  const std::multiset<uint64_t> first = run(7);
  EXPECT_EQ(first.size(), 4u);
  EXPECT_EQ(first, run(7));
  EXPECT_NE(first, run(8));
}

TEST(TraceStoreTest, PromoteCappedMarksRetainedEntryInPlace) {
  TraceStore store(Opts(/*top_k=*/2, /*reservoir=*/0, /*max_outcomes=*/4));
  std::shared_ptr<Trace> trace = store.StartTrace();
  const TraceCompletion completion = Comp(500, "miss");
  ASSERT_EQ(store.OnComplete(trace, completion), trace->id());

  store.PromoteCapped(trace, completion);
  RetainedTrace entry;
  ASSERT_TRUE(store.FindTrace(trace->id(), &entry));
  EXPECT_TRUE(entry.capped);
  // Marked where it already lives — no duplicate in the outcome ring.
  EXPECT_EQ(store.stats().retained_outcome, 0);
  EXPECT_EQ(store.Retained().size(), 1u);
}

TEST(TraceStoreTest, PromoteCappedMaterializesShellForUnretainedHit) {
  TraceStore store(Opts(/*top_k=*/1, /*reservoir=*/0, /*max_outcomes=*/4));
  store.OnComplete(nullptr, Comp(1000, "miss"));  // raises the floor
  const TraceCompletion hit = Comp(5);
  ASSERT_EQ(store.OnComplete(nullptr, hit), 0u);  // let go at completion

  // The row-cap signal arrives later, from plan execution: the request must
  // end up retained even though the serve-time decision dropped it.
  store.PromoteCapped(nullptr, hit);
  const TraceStore::Stats stats = store.stats();
  EXPECT_EQ(stats.retained_outcome, 1);
  for (const RetainedTrace& entry : store.Retained()) {
    if (entry.reason != RetainReason::kOutcome) continue;
    EXPECT_TRUE(entry.capped);
    ASSERT_NE(entry.trace, nullptr);
    EXPECT_TRUE(entry.trace->spans().empty());
  }
}

TEST(TraceStoreTest, JsonlIsSortedByLatencyAndParses) {
  TraceStore store(Opts(/*top_k=*/4, /*reservoir=*/4, /*max_outcomes=*/4));
  std::shared_ptr<Trace> with_spans = store.StartTrace();
  with_spans->AddSpan(TraceStage::kBeamSearch, 1.0, 250.0);
  TraceCompletion miss = Comp(300, "miss");
  miss.query_name = "q\"needs-escaping\\";
  store.OnComplete(with_spans, miss);
  TraceCompletion error = Comp(40, "error");
  error.error = true;
  store.OnComplete(nullptr, error);
  store.OnComplete(nullptr, Comp(120, "hit"));

  const std::string jsonl = store.ToJsonl();
  std::istringstream lines(jsonl);
  std::string line;
  double previous = 1e18;
  int parsed = 0;
  bool saw_spans = false;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(JsonParses(line)) << line;
    const size_t at = line.find("\"latency_us\":");
    ASSERT_NE(at, std::string::npos);
    const double latency = std::strtod(line.c_str() + at + 13, nullptr);
    EXPECT_LE(latency, previous);  // sorted descending
    previous = latency;
    if (line.find("\"stage\":\"beam_search\"") != std::string::npos) {
      saw_spans = true;
    }
    ++parsed;
  }
  EXPECT_EQ(parsed, 3);
  EXPECT_TRUE(saw_spans);
}

TEST(TraceStoreTest, ExemplarDanglesGracefullyAfterEviction) {
  TraceStore store(Opts(/*top_k=*/1, /*reservoir=*/0, /*max_outcomes=*/0));
  Log2Histogram histogram;
  const uint64_t id = store.OnComplete(nullptr, Comp(100, "miss"));
  ASSERT_NE(id, 0u);
  histogram.Record(100, id);

  // A slower completion displaces the exemplar's trace from the heap. The
  // bucket tag survives; resolution reports "gone" instead of crashing or
  // returning someone else's trace.
  store.OnComplete(nullptr, Comp(200, "miss"));
  const HistogramData data = histogram.Snapshot();
  EXPECT_EQ(data.PercentileExemplar(99), id);
  RetainedTrace entry;
  EXPECT_FALSE(store.FindTrace(id, &entry));
}

TEST(TraceContextTest, NestedScopesRestoreInOrder) {
  RequestTracerOptions options;
  options.sample_every = 1;
  RequestTracer tracer(options);
  std::shared_ptr<Trace> outer = tracer.MaybeStartTrace();
  std::shared_ptr<Trace> inner = tracer.MaybeStartTrace();
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);

  EXPECT_EQ(CurrentTraceContext(), nullptr);
  {
    ScopedTraceContext outer_scope(&tracer, outer);
    ASSERT_NE(CurrentTraceContext(), nullptr);
    EXPECT_EQ(CurrentTraceContext()->trace->id(), outer->id());
    {
      ScopedTraceContext inner_scope(&tracer, inner);
      EXPECT_EQ(CurrentTraceContext()->trace->id(), inner->id());
    }
    // The inner scope restored the outer context, not a cleared slot.
    ASSERT_NE(CurrentTraceContext(), nullptr);
    EXPECT_EQ(CurrentTraceContext()->trace->id(), outer->id());
  }
  EXPECT_EQ(CurrentTraceContext(), nullptr);
}

TEST(TraceContextTest, InactiveContextInstallsNothing) {
  RequestTracer tracer;
  ScopedTraceContext scope(&tracer, nullptr);
  EXPECT_EQ(CurrentTraceContext(), nullptr);
}

TEST(TraceContextTest, PoolThreadSpansRaceCompletionAndSerialization) {
  // The serving shape: the request thread completes (and the store
  // serializes) while a pool thread is still appending spans to the same
  // trace through a re-installed context. Trace is append-only and
  // internally synchronized, so every span must land and every JSONL
  // render must stay well-formed. TSan is the real assertion here.
  constexpr int kSpans = 200;
  TraceStore store(Opts(/*top_k=*/4, /*reservoir=*/0, /*max_outcomes=*/0));
  RequestTracer tracer;
  std::shared_ptr<Trace> trace = store.StartTrace();
  const TraceContext context{&tracer, trace};

  std::thread pool_thread([&] {
    ScopedTraceContext scope(context);  // the PlanMiss re-install idiom
    for (int i = 0; i < kSpans; ++i) {
      SpanTimer span(TraceStage::kInference);
    }
  });
  store.OnComplete(trace, Comp(750, "miss"));
  for (int i = 0; i < 50; ++i) {
    const std::string jsonl = store.ToJsonl();
    EXPECT_FALSE(jsonl.empty());
  }
  pool_thread.join();

  RetainedTrace entry;
  ASSERT_TRUE(store.FindTrace(trace->id(), &entry));
  EXPECT_EQ(entry.trace->spans().size(), static_cast<size_t>(kSpans));
  std::istringstream lines(store.ToJsonl());
  std::string line;
  while (std::getline(lines, line)) EXPECT_TRUE(JsonParses(line)) << line;
}

}  // namespace
}  // namespace balsa::obs
