// Batched inference correctness: ValueNetwork::ForwardBatch must agree with
// per-item Predict, an item's score must be bitwise independent of its
// batch, the micro-batching InferenceService must preserve both properties
// under concurrent clients, and ScoreBatch-driven beam search must produce
// exactly the plans the per-plan path produces.
#include "src/runtime/inference_service.h"

#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/balsa/planner.h"
#include "test_util.h"

namespace balsa {
namespace {

class InferenceServiceTest : public ::testing::Test {
 protected:
  InferenceServiceTest()
      : fixture_(testing::MakeStarFixture()),
        query_(testing::MakeStarQuery(fixture_.schema())),
        featurizer_(&fixture_.schema(), fixture_.estimator.get()) {
    ValueNetConfig config;
    config.query_dim = featurizer_.query_dim();
    config.node_dim = featurizer_.node_dim();
    config.tree_hidden1 = 16;
    config.tree_hidden2 = 8;
    config.mlp_hidden = 8;
    config.init_seed = 11;
    network_ = std::make_unique<ValueNetwork>(config);
    query_feat_ = featurizer_.QueryFeatures(query_);

    // Distinct left-deep plans: every permutation of the dimension joins
    // under every single join operator.
    const int perms[6][3] = {{1, 2, 3}, {1, 3, 2}, {2, 1, 3},
                             {2, 3, 1}, {3, 1, 2}, {3, 2, 1}};
    for (JoinOp op : {JoinOp::kHashJoin, JoinOp::kMergeJoin,
                      JoinOp::kNLJoin}) {
      for (const auto& perm : perms) {
        Plan plan;
        int root = plan.AddScan(0, ScanOp::kSeqScan);
        for (int rel : perm) {
          root = plan.AddJoin(root, plan.AddScan(rel, ScanOp::kSeqScan), op);
        }
        plan.set_root(root);
        trees_.push_back(featurizer_.PlanFeatures(query_, plan));
      }
    }
  }

  std::vector<const nn::TreeSample*> TreePtrs() const {
    std::vector<const nn::TreeSample*> ptrs;
    for (const nn::TreeSample& t : trees_) ptrs.push_back(&t);
    return ptrs;
  }

  testing::StarFixture fixture_;
  Query query_;
  Featurizer featurizer_;
  std::unique_ptr<ValueNetwork> network_;
  nn::Vec query_feat_;
  std::vector<nn::TreeSample> trees_;
};

TEST_F(InferenceServiceTest, ForwardBatchMatchesPredict) {
  std::vector<double> batched = network_->ForwardBatch(query_feat_,
                                                       TreePtrs());
  ASSERT_EQ(batched.size(), trees_.size());
  for (size_t i = 0; i < trees_.size(); ++i) {
    EXPECT_DOUBLE_EQ(batched[i], network_->Predict(query_feat_, trees_[i]))
        << "plan " << i;
  }
}

TEST_F(InferenceServiceTest, ScoreIsIndependentOfBatchComposition) {
  // The batched kernels accumulate in MatVec's exact order, so an item's
  // score must be bitwise identical alone and inside any batch.
  std::vector<double> full = network_->ForwardBatch(query_feat_, TreePtrs());
  for (size_t i = 0; i < trees_.size(); ++i) {
    std::vector<double> solo =
        network_->ForwardBatch(query_feat_, {&trees_[i]});
    EXPECT_EQ(solo[0], full[i]) << "plan " << i;
  }
  // A shuffled sub-batch agrees element-for-element too.
  std::vector<const nn::TreeSample*> subset{&trees_[5], &trees_[0],
                                            &trees_[11]};
  std::vector<double> sub = network_->ForwardBatch(query_feat_, subset);
  EXPECT_EQ(sub[0], full[5]);
  EXPECT_EQ(sub[1], full[0]);
  EXPECT_EQ(sub[2], full[11]);
}

TEST_F(InferenceServiceTest, MixedQueryBatchMatchesPerItem) {
  // Per-item query vectors (the fused cross-client case).
  nn::Vec scoped_feat = featurizer_.QueryFeatures(
      query_, TableSet::Single(0).With(1));
  std::vector<const nn::Vec*> queries;
  std::vector<const nn::TreeSample*> plans;
  for (size_t i = 0; i < trees_.size(); ++i) {
    queries.push_back(i % 2 == 0 ? &query_feat_ : &scoped_feat);
    plans.push_back(&trees_[i]);
  }
  std::vector<double> batched = network_->ForwardBatch(queries, plans);
  for (size_t i = 0; i < trees_.size(); ++i) {
    EXPECT_DOUBLE_EQ(batched[i], network_->Predict(*queries[i], trees_[i]));
  }
}

TEST_F(InferenceServiceTest, ServiceMatchesDirectForwardBatch) {
  std::vector<double> direct = network_->ForwardBatch(query_feat_,
                                                      TreePtrs());
  for (int workers : {0, 1, 2}) {  // 0 = synchronous mode
    InferenceServiceOptions options;
    options.num_workers = workers;
    InferenceService service(network_.get(), options);
    std::vector<double> served = service.ScoreBatch(query_feat_, TreePtrs());
    ASSERT_EQ(served.size(), direct.size());
    for (size_t i = 0; i < direct.size(); ++i) {
      EXPECT_EQ(served[i], direct[i]) << "workers=" << workers;
    }
  }
}

TEST_F(InferenceServiceTest, ServiceChunksOversizedRequests) {
  InferenceServiceOptions options;
  options.max_batch_size = 4;
  options.num_workers = 1;
  InferenceService service(network_.get(), options);
  std::vector<double> served = service.ScoreBatch(query_feat_, TreePtrs());
  std::vector<double> direct = network_->ForwardBatch(query_feat_,
                                                      TreePtrs());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(served[i], direct[i]);
  }
  InferenceService::Stats stats = service.stats();
  EXPECT_EQ(stats.items, static_cast<int64_t>(trees_.size()));
  EXPECT_GE(stats.forward_batches,
            static_cast<int64_t>((trees_.size() + 3) / 4));
  EXPECT_LE(stats.max_fused_items, 4);
}

TEST_F(InferenceServiceTest, ConcurrentClientsGetCorrectScores) {
  InferenceServiceOptions options;
  options.num_workers = 2;
  InferenceService service(network_.get(), options);
  std::vector<double> direct = network_->ForwardBatch(query_feat_,
                                                      TreePtrs());

  constexpr int kClients = 8;
  std::vector<std::vector<double>> results(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int round = 0; round < 5; ++round) {
        results[c] = service.ScoreBatch(query_feat_, TreePtrs());
      }
    });
  }
  for (std::thread& t : clients) t.join();

  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(results[c].size(), direct.size());
    for (size_t i = 0; i < direct.size(); ++i) {
      // Fusion across clients must never perturb a score.
      EXPECT_EQ(results[c][i], direct[i]) << "client " << c;
    }
  }
  InferenceService::Stats stats = service.stats();
  EXPECT_EQ(stats.requests, kClients * 5);
  EXPECT_EQ(stats.items,
            static_cast<int64_t>(kClients * 5 * trees_.size()));
}

TEST_F(InferenceServiceTest, BatchScoredBeamSearchFindsIdenticalPlans) {
  PlannerOptions batched;
  batched.beam_size = 10;
  batched.top_k = 5;
  batched.batch_scoring = true;
  PlannerOptions per_plan = batched;
  per_plan.batch_scoring = false;

  BeamSearchPlanner batch_planner(&fixture_.schema(), &featurizer_,
                                  network_.get(), batched);
  BeamSearchPlanner per_plan_planner(&fixture_.schema(), &featurizer_,
                                     network_.get(), per_plan);
  auto a = batch_planner.TopK(query_);
  auto b = per_plan_planner.TopK(query_);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();

  ASSERT_EQ(a->plans.size(), b->plans.size());
  for (size_t i = 0; i < a->plans.size(); ++i) {
    EXPECT_EQ(a->plans[i].plan.Fingerprint(), b->plans[i].plan.Fingerprint())
        << "diverged at plan " << i;
    EXPECT_DOUBLE_EQ(a->plans[i].predicted_ms, b->plans[i].predicted_ms);
  }
  // The two modes run the same forward passes; batching only fuses them.
  EXPECT_EQ(a->network_evals, b->network_evals);
  EXPECT_EQ(a->scored_states, b->scored_states);
  EXPECT_EQ(b->batch_calls, b->network_evals);  // per-plan: one call each
  EXPECT_LT(a->batch_calls, a->network_evals);  // batched: fused frontiers
  EXPECT_GE(a->scored_states, a->network_evals);
}

TEST_F(InferenceServiceTest, PlannerThroughServiceFindsIdenticalPlans) {
  PlannerOptions options;
  options.beam_size = 10;
  options.top_k = 5;
  BeamSearchPlanner direct(&fixture_.schema(), &featurizer_, network_.get(),
                           options);
  auto baseline = direct.TopK(query_);
  ASSERT_TRUE(baseline.ok());

  InferenceServiceOptions service_options;
  service_options.num_workers = 2;
  InferenceService service(network_.get(), service_options);
  BeamSearchPlanner routed(&fixture_.schema(), &featurizer_, network_.get(),
                           options);
  routed.set_inference_service(&service);
  auto via_service = routed.TopK(query_);
  ASSERT_TRUE(via_service.ok());

  ASSERT_EQ(via_service->plans.size(), baseline->plans.size());
  for (size_t i = 0; i < baseline->plans.size(); ++i) {
    EXPECT_EQ(via_service->plans[i].plan.Fingerprint(),
              baseline->plans[i].plan.Fingerprint());
    EXPECT_EQ(via_service->plans[i].predicted_ms,
              baseline->plans[i].predicted_ms);
  }
  EXPECT_GT(service.stats().forward_batches, 0);
}

}  // namespace
}  // namespace balsa
