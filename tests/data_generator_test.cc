#include "src/storage/data_generator.h"

#include <set>
#include <unordered_map>

#include <gtest/gtest.h>

#include "test_util.h"

namespace balsa {
namespace {

class DataGeneratorTest : public ::testing::Test {
 protected:
  DataGeneratorTest()
      : fixture_(testing::MakeStarFixture(/*seed=*/5)),
        snap_(fixture_.db->GetSnapshot()) {}

  const ChunkedColumn& Column(const char* table, const char* column) {
    int t = fixture_.schema().TableIndex(table);
    int c = fixture_.schema().table(t).ColumnIndex(column);
    return snap_.column(t, c);
  }

  testing::StarFixture fixture_;
  Snapshot snap_;
};

TEST_F(DataGeneratorTest, PrimaryKeysAreDenseAndUnique) {
  const auto& pk = Column("customer", "id");
  for (int64_t i = 0; i < pk.size(); ++i) {
    EXPECT_EQ(pk[i], i);
  }
}

TEST_F(DataGeneratorTest, ForeignKeysreferenceValidRows) {
  const auto& fk = Column("sales", "customer_id");
  int cust = fixture_.schema().TableIndex("customer");
  int64_t cust_rows = fixture_.db->row_count(cust);
  for (int64_t v : fk) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, cust_rows);
  }
}

TEST_F(DataGeneratorTest, AttributesStayInDomain) {
  const auto& region = Column("customer", "region");
  for (int64_t v : region) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 10);
  }
}

TEST_F(DataGeneratorTest, ZipfSkewConcentratesFanIn) {
  // product_id has skew 0.9: the hottest product gets far more than the
  // uniform share of sales rows.
  const auto& fk = Column("sales", "product_id");
  std::unordered_map<int64_t, int> counts;
  for (int64_t v : fk) counts[v]++;
  int hottest = 0;
  for (const auto& [v, c] : counts) hottest = std::max(hottest, c);
  double uniform_share = static_cast<double>(fk.size()) / 200.0;
  EXPECT_GT(hottest, 4 * uniform_share);
}

TEST_F(DataGeneratorTest, DeterministicForSeed) {
  auto again = testing::MakeStarFixture(/*seed=*/5);
  int t = fixture_.schema().TableIndex("sales");
  EXPECT_EQ(fixture_.db->CopyTableData(t).columns,
            again.db->CopyTableData(t).columns);
  auto different = testing::MakeStarFixture(/*seed=*/6);
  EXPECT_NE(fixture_.db->CopyTableData(t).columns,
            different.db->CopyTableData(t).columns);
}

TEST_F(DataGeneratorTest, ScaleMultipliesRowCounts) {
  Database db(testing::MakeStarSchema(/*fact_rows=*/4000));
  DataGeneratorOptions options;
  options.scale = 0.5;
  ASSERT_TRUE(GenerateData(&db, options).ok());
  int t = db.schema().TableIndex("sales");
  EXPECT_EQ(db.row_count(t), 2000);
}

TEST_F(DataGeneratorTest, NullFractionRespected) {
  // Build a schema with a nullable FK and check the realized fraction.
  Schema schema;
  ColumnDef pk;
  pk.name = "id";
  pk.kind = ColumnKind::kPrimaryKey;
  ASSERT_TRUE(schema.AddTable({"dim", 100, {pk}}).ok());
  ColumnDef fk;
  fk.name = "dim_id";
  fk.kind = ColumnKind::kForeignKey;
  fk.ref_table = "dim";
  fk.ref_column = "id";
  fk.null_fraction = 0.4;
  ASSERT_TRUE(schema.AddTable({"fact", 10000, {pk, fk}}).ok());
  Database db(std::move(schema));
  ASSERT_TRUE(GenerateData(&db).ok());
  const TableData fact = db.CopyTableData(1);
  const auto& col = fact.columns[1];
  double nulls = 0;
  for (int64_t v : col) nulls += v == -1;
  EXPECT_NEAR(nulls / static_cast<double>(col.size()), 0.4, 0.05);
}

TEST_F(DataGeneratorTest, CorrelatedColumnBreaksIndependence) {
  // In a correlated pair, P(b | a) concentrates: for the most common value
  // of a, one b value dominates well beyond its marginal frequency.
  Schema schema;
  ColumnDef pk;
  pk.name = "id";
  pk.kind = ColumnKind::kPrimaryKey;
  ColumnDef a;
  a.name = "a";
  a.kind = ColumnKind::kAttribute;
  a.domain_size = 20;
  a.zipf_skew = 0.8;
  ColumnDef b;
  b.name = "b";
  b.kind = ColumnKind::kAttribute;
  b.domain_size = 50;
  b.corr_column = "a";
  b.corr_strength = 0.9;
  ASSERT_TRUE(schema.AddTable({"t", 20000, {pk, a, b}}).ok());
  Database db(std::move(schema));
  ASSERT_TRUE(GenerateData(&db).ok());
  const TableData gen = db.CopyTableData(0);
  const auto& col_a = gen.columns[1];
  const auto& col_b = gen.columns[2];
  std::unordered_map<int64_t, int> b_given_a0;
  int n_a0 = 0;
  for (size_t i = 0; i < col_a.size(); ++i) {
    if (col_a[i] == 0) {
      b_given_a0[col_b[i]]++;
      n_a0++;
    }
  }
  int top = 0;
  for (const auto& [v, c] : b_given_a0) top = std::max(top, c);
  // Under independence the top conditional share would be ~the marginal
  // (< 20%); correlation pushes it near corr_strength.
  EXPECT_GT(static_cast<double>(top) / n_a0, 0.5);
}

TEST_F(DataGeneratorTest, CorrelationOrderingValidated) {
  Schema schema;
  ColumnDef pk;
  pk.name = "id";
  pk.kind = ColumnKind::kPrimaryKey;
  ColumnDef bad;
  bad.name = "x";
  bad.kind = ColumnKind::kAttribute;
  bad.corr_column = "later";  // references a column that comes after it
  bad.corr_strength = 0.5;
  ColumnDef later;
  later.name = "later";
  later.kind = ColumnKind::kAttribute;
  ASSERT_TRUE(schema.AddTable({"t", 10, {pk, bad, later}}).ok());
  Database db(std::move(schema));
  EXPECT_FALSE(GenerateData(&db).ok());
}

TEST_F(DataGeneratorTest, HashIndexLookupsMatchScans) {
  int sales = fixture_.schema().TableIndex("sales");
  int cust_col = fixture_.schema().table(sales).ColumnIndex("customer_id");
  const HashIndex& index = snap_.index(sales, cust_col);
  const auto& column = snap_.column(sales, cust_col);
  // Every row id returned by the index holds the looked-up value, and the
  // total count matches a scan.
  int64_t scan_count = 0;
  for (int64_t v : column) scan_count += v == 17;
  const auto& rows = index.Lookup(17);
  EXPECT_EQ(static_cast<int64_t>(rows.size()), scan_count);
  for (uint32_t r : rows) EXPECT_EQ(column[r], 17);
  EXPECT_TRUE(index.Lookup(999999).empty());
}

}  // namespace
}  // namespace balsa
