// Concurrent readers vs. change-stream ingest through MVCC snapshots: the
// exclusion contract is gone, so executor scans, snapshot index lookups,
// ANALYZE rescans, and true-cardinality probes all race InsertRows /
// DeleteRows / UpdateValues — and must still observe internally consistent,
// torn-free data. Run under ThreadSanitizer in CI.
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/exec/executor.h"
#include "src/plan/query_builder.h"
#include "src/stats/card_oracle.h"
#include "src/stats/table_stats.h"
#include "src/storage/change_log.h"
#include "src/util/logging.h"
#include "src/util/thread_pool.h"

namespace balsa {
namespace {

// Two tables; each gets exactly one writer (same-table writers are
// serialized by contract), every reader roams freely. Table rows maintain
// the invariant v == 3 * id or v == 5 * id, which every published version
// must satisfy: inserts write 3 * id, updates flip rows between the two
// multiples (so an in-place overwrite of pinned data would change a
// snapshot's checksum), and swap-remove moves whole rows.
Schema StressSchema(int tables = 2) {
  Schema schema;
  auto pk = [] {
    ColumnDef c;
    c.name = "id";
    c.kind = ColumnKind::kPrimaryKey;
    return c;
  };
  auto attr = [] {
    ColumnDef c;
    c.name = "v";
    c.kind = ColumnKind::kAttribute;
    c.domain_size = 1 << 20;
    return c;
  };
  for (int t = 0; t < tables; ++t) {
    EXPECT_TRUE(
        schema.AddTable({"t" + std::to_string(t), 256, {pk(), attr()}}).ok());
  }
  return schema;
}

std::unique_ptr<Database> StressDb(int tables = 2, int64_t rows = 256) {
  auto db = std::make_unique<Database>(StressSchema(tables));
  for (int t = 0; t < tables; ++t) {
    TableData data;
    data.row_count = rows;
    data.columns.resize(2);
    for (int64_t r = 0; r < rows; ++r) {
      data.columns[0].push_back(r);
      data.columns[1].push_back(3 * r);
    }
    EXPECT_TRUE(db->SetTableData(t, std::move(data)).ok());
  }
  return db;
}

/// One writer's deterministic ingest stream for its own table: grow, shrink,
/// and rewrite — always preserving v == 3 * id per published version.
void WriteBatches(ChangeLog* log, Database* db, int table, int batches,
                  uint64_t seed) {
  int64_t next_pk = 1000000 + static_cast<int64_t>(seed) * 1000000;
  for (int b = 0; b < batches; ++b) {
    std::vector<std::vector<int64_t>> rows;
    for (int i = 0; i < 8; ++i) {
      rows.push_back({next_pk, 3 * next_pk});
      next_pk++;
    }
    BALSA_CHECK(log->InsertRows(table, rows).ok(), "insert");
    // This thread is the table's only writer, so reading the current
    // version to derive updates/deletes is race-free.
    std::shared_ptr<const TableVersion> version = db->GetTableVersion(table);
    int64_t n = version->row_count();
    std::vector<std::pair<int64_t, int64_t>> updates;
    const int64_t multiple = b % 2 == 0 ? 5 : 3;
    for (int i = 0; i < 4; ++i) {
      int64_t row = (static_cast<int64_t>(b) * 37 + i * 11) % n;
      updates.push_back(
          {row, multiple * version->column(0)[static_cast<size_t>(row)]});
    }
    BALSA_CHECK(log->UpdateValues(table, 1, updates).ok(), "update");
    std::vector<int64_t> deletes;
    for (int i = 0; i < 8; ++i) deletes.push_back(n - 1 - i);
    BALSA_CHECK(log->DeleteRows(table, deletes).ok(), "delete");
  }
}

TEST(SnapshotStressTest, ReadersRaceIngestWithoutTearingOrBlocking) {
  auto db = StressDb();
  ChangeLog log(db.get());
  CardOracle oracle(db.get());
  const Schema& schema = db->schema();

  std::atomic<bool> stop{false};
  std::atomic<int64_t> torn{0};
  std::atomic<int64_t> scans{0};

  // Scan readers: pin a snapshot, verify the row invariant, and re-walk the
  // same snapshot to prove checksum stability (no torn reads, ever).
  auto scan_reader = [&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (int t = 0; t < 2; ++t) {
        Snapshot snap = db->GetSnapshot();
        const auto& ids = snap.column(t, 0);
        const auto& vs = snap.column(t, 1);
        if (ids.size() != vs.size() ||
            static_cast<int64_t>(ids.size()) != snap.row_count(t)) {
          torn++;
          continue;
        }
        uint64_t sum1 = 0, sum2 = 0;
        for (int64_t r = 0; r < ids.size(); ++r) {
          if (vs[r] != 3 * ids[r] && vs[r] != 5 * ids[r]) torn++;
          sum1 += static_cast<uint64_t>(vs[r]);
        }
        for (int64_t r = 0; r < ids.size(); ++r) {
          sum2 += static_cast<uint64_t>(vs[r]);
        }
        if (sum1 != sum2) torn++;
        scans++;
      }
    }
  };

  // Index readers: a snapshot's lazily built hash index must agree with the
  // snapshot's own column, row by row.
  auto index_reader = [&] {
    int64_t probe = 0;
    while (!stop.load(std::memory_order_acquire)) {
      Snapshot snap = db->GetSnapshot();
      const auto& ids = snap.column(0, 0);
      if (ids.empty()) continue;
      int64_t id = ids[static_cast<size_t>(probe++ % static_cast<int64_t>(
                                               ids.size()))];
      for (uint32_t r : snap.index(0, 1).Lookup(3 * id)) {
        if (snap.column(0, 1)[r] != 3 * id) torn++;
      }
    }
  };

  // ANALYZE + oracle readers: a full rescan and a true-cardinality probe
  // each describe one pinned epoch; internal consistency means the filtered
  // count can never exceed the snapshot-consistent row count.
  auto analyze_reader = [&] {
    QueryBuilder builder(&schema, "stress_scan");
    auto query = builder.From("t0", "a").Filter("a.v", PredOp::kGe, 0).Build();
    BALSA_CHECK(query.ok(), "query");
    query->set_id(1);
    while (!stop.load(std::memory_order_acquire)) {
      auto stats = AnalyzeTable(db->GetSnapshot(), 0);
      if (!stats.ok()) {
        torn++;
        continue;
      }
      auto card = oracle.Cardinality(*query, TableSet::Single(0));
      if (!card.ok()) torn++;
    }
  };

  std::vector<std::thread> threads;
  threads.emplace_back(scan_reader);
  threads.emplace_back(scan_reader);
  threads.emplace_back(index_reader);
  threads.emplace_back(analyze_reader);
  std::vector<std::thread> writers;
  writers.emplace_back([&] { WriteBatches(&log, db.get(), 0, 60, 1); });
  writers.emplace_back([&] { WriteBatches(&log, db.get(), 1, 60, 2); });
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  for (auto& r : threads) r.join();

  EXPECT_EQ(torn.load(), 0);
  EXPECT_GT(scans.load(), 0);
  // Final state: sixty batches of +8 / -8 leave the row count unchanged,
  // and the invariant holds on a quiescent scan too.
  for (int t = 0; t < 2; ++t) {
    Snapshot snap = db->GetSnapshot();
    EXPECT_EQ(snap.row_count(t), 256);
    for (int64_t r = 0; r < snap.column(t, 0).size(); ++r) {
      int64_t id = snap.column(t, 0)[r];
      int64_t v = snap.column(t, 1)[r];
      EXPECT_TRUE(v == 3 * id || v == 5 * id) << "row " << r;
    }
  }
}

TEST(SnapshotStressTest, ParallelMorselScansAndIndexBuildsRaceFourWriters) {
  // Multi-chunk tables so morsel scans genuinely fan out: parallel and
  // serial executors over the same pinned snapshot must agree bitwise while
  // four writers ingest (one per table, per contract) and a mid-stream
  // Rebase replays table 0's traffic. Lazy index builds race the scans on
  // the same versions. Run under ThreadSanitizer in CI.
  constexpr int kTables = 4;
  const int64_t rows = 2 * kChunkRows + 300;
  auto db = StressDb(kTables, rows);
  ChangeLog log(db.get());
  const Schema& schema = db->schema();
  ThreadPool pool(4);

  std::atomic<bool> stop{false};
  std::atomic<int64_t> torn{0};
  std::atomic<int64_t> scans{0};

  // One all-rows query per table: v is always a non-negative multiple of
  // id, so kGe 0 matches every row of every published version.
  std::vector<Query> queries;
  for (int t = 0; t < kTables; ++t) {
    QueryBuilder builder(&schema, "morsel");
    auto query = builder.From(schema.table(t).name, "a")
                     .Filter("a.v", PredOp::kGe, 0)
                     .Build();
    BALSA_CHECK(query.ok(), "query");
    Query q = std::move(query).value();
    q.set_id(t + 1);
    queries.push_back(std::move(q));
  }

  // Morsel readers: scan each table in parallel (single-chunk morsels on a
  // shared pool) and serially from the same snapshot; results must be
  // bitwise identical and cover exactly the snapshot's rows.
  auto morsel_reader = [&] {
    int t = 0;
    while (!stop.load(std::memory_order_acquire)) {
      Snapshot snap = db->GetSnapshot();
      ExecutorOptions parallel;
      parallel.use_index_for_eq = false;
      parallel.morsel_chunks = 1;
      parallel.pool = &pool;
      ExecutorOptions serial = parallel;
      serial.pool = nullptr;
      auto pr = Executor(snap, parallel).Scan(queries[t], 0);
      auto sr = Executor(snap, serial).Scan(queries[t], 0);
      if (!pr.ok() || !sr.ok()) {
        torn++;
      } else {
        if (pr->NumRows() != snap.row_count(t)) torn++;
        if (pr->tuples[0] != sr->tuples[0]) torn++;
      }
      scans++;
      t = (t + 1) % kTables;
    }
  };

  // Index readers: force lazy builds on fresh versions while scans and
  // writers run; every hit must hold the looked-up value in the same
  // snapshot.
  auto index_reader = [&] {
    int64_t probe = 0;
    int t = 0;
    while (!stop.load(std::memory_order_acquire)) {
      Snapshot snap = db->GetSnapshot();
      const auto& ids = snap.column(t, 0);
      if (!ids.empty()) {
        int64_t id = ids[probe++ % ids.size()];
        for (uint32_t r : snap.index(t, 1).Lookup(3 * id)) {
          if (snap.column(t, 1)[r] != 3 * id) torn++;
        }
      }
      t = (t + 1) % kTables;
    }
  };

  std::vector<std::thread> readers;
  readers.emplace_back(morsel_reader);
  readers.emplace_back(morsel_reader);
  readers.emplace_back(index_reader);
  std::vector<std::thread> writers;
  for (int t = 0; t < kTables; ++t) {
    writers.emplace_back(
        [&, t] { WriteBatches(&log, db.get(), t, 40, t + 1); });
  }

  // Mid-rebase replay: a Rebase on table 0 runs its (parallel-scanning)
  // rescan while table 0's writer keeps streaming; the pinned snapshot must
  // stay frozen under the pool's morsel scans.
  std::thread rebaser([&] {
    Status status = log.Rebase(
        0, [&](const TableDelta&, const TableAnchor&,
               const Snapshot& pinned) -> StatusOr<TableAnchor> {
          const int64_t pinned_rows = pinned.row_count(0);
          ExecutorOptions options;
          options.use_index_for_eq = false;
          options.morsel_chunks = 1;
          options.pool = &pool;
          for (int pass = 0; pass < 3; ++pass) {
            auto result = Executor(pinned, options).Scan(queries[0], 0);
            BALSA_CHECK(result.ok(), "rebase scan");
            if (result->NumRows() != pinned_rows) torn++;
            std::this_thread::yield();
          }
          TableAnchor anchor;
          anchor.base_row_count = pinned_rows;
          anchor.stats_version = 1;
          anchor.columns.resize(2);
          return anchor;
        });
    BALSA_CHECK(status.ok(), "rebase");
  });

  for (auto& w : writers) w.join();
  rebaser.join();
  stop.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();

  EXPECT_EQ(torn.load(), 0);
  EXPECT_GT(scans.load(), 0);
  // +8 / -8 per batch: every table ends where it started, invariant intact.
  Snapshot snap = db->GetSnapshot();
  for (int t = 0; t < kTables; ++t) {
    EXPECT_EQ(snap.row_count(t), rows);
    for (int64_t r = 0; r < snap.row_count(t); ++r) {
      int64_t id = snap.column(t, 0)[r];
      int64_t v = snap.column(t, 1)[r];
      ASSERT_TRUE(v == 3 * id || v == 5 * id)
          << "table " << t << " row " << r;
    }
  }
}

TEST(SnapshotStressTest, RebaseRescanRacesIngestAndStaysExact) {
  // A full-rescan Rebase (the ReanalyzeScheduler fallback) runs on its
  // pinned snapshot while the table's writer keeps streaming; afterwards
  // the delta describes exactly what landed since the snapshot.
  auto db = StressDb();
  ChangeLog log(db.get());

  std::atomic<bool> in_callback{false};
  std::thread writer([&] {
    // Wait until the rescan is provably in flight, then ingest.
    while (!in_callback.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    for (int b = 0; b < 10; ++b) {
      std::vector<std::vector<int64_t>> rows;
      for (int i = 0; i < 4; ++i) {
        int64_t pk = 5000 + b * 4 + i;
        rows.push_back({pk, 3 * pk});
      }
      BALSA_CHECK(log.InsertRows(0, rows).ok(), "insert");
    }
  });

  Status status = log.Rebase(
      0, [&](const TableDelta&, const TableAnchor&,
             const Snapshot& snapshot) -> StatusOr<TableAnchor> {
        in_callback.store(true, std::memory_order_release);
        // The pinned snapshot never changes, however long the rescan takes.
        const int64_t pinned_rows = snapshot.row_count(0);
        TableStats rescanned;
        for (int pass = 0; pass < 5; ++pass) {
          auto stats = AnalyzeTable(snapshot, 0);
          BALSA_CHECK(stats.ok(), "analyze");
          BALSA_CHECK(stats->row_count == pinned_rows, "torn rescan");
          rescanned = std::move(stats).value();
          std::this_thread::yield();
        }
        TableAnchor anchor;
        anchor.base_row_count = rescanned.row_count;
        anchor.stats_version = 1;
        anchor.columns.resize(2);
        return anchor;
      });
  writer.join();
  ASSERT_TRUE(status.ok());

  // The anchor reflects the pinned snapshot (256 rows); the delta absorbed
  // every row the writer streamed during the rescan.
  EXPECT_EQ(log.anchor(0).base_row_count, 256);
  EXPECT_EQ(log.Snapshot(0).rows_inserted, 40);
  EXPECT_EQ(db->row_count(0), 256 + 40);
}

}  // namespace
}  // namespace balsa
