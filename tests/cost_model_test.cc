#include "src/cost/cost_model.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace balsa {
namespace {

class CostModelTest : public ::testing::Test {
 protected:
  CostModelTest()
      : fixture_(testing::MakeStarFixture()),
        query_(testing::MakeStarQuery(fixture_.schema())),
        cout_(fixture_.estimator, &fixture_.schema()),
        cmm_(fixture_.estimator, &fixture_.schema()),
        engine_(fixture_.estimator, &fixture_.schema(), EngineCostParams{}) {}

  Plan TwoWay(JoinOp op) {
    Plan p;
    int s = p.AddScan(0, ScanOp::kSeqScan);
    int c = p.AddScan(1, ScanOp::kSeqScan);
    p.AddJoin(s, c, op);
    return p;
  }

  testing::StarFixture fixture_;
  Query query_;
  CoutCostModel cout_;
  CmmCostModel cmm_;
  EngineCostModel engine_;
};

TEST_F(CostModelTest, CoutIsSumOfEstimatedSizes) {
  Plan p = TwoWay(JoinOp::kHashJoin);
  double est_s = fixture_.estimator->EstimateScanRows(query_, 0);
  double est_c = fixture_.estimator->EstimateScanRows(query_, 1);
  double est_j =
      fixture_.estimator->EstimateJoinRows(query_, TableSet::FirstN(2));
  EXPECT_NEAR(cout_.PlanCost(query_, p), est_s + est_c + est_j, 1e-6);
}

TEST_F(CostModelTest, CoutIgnoresPhysicalOperators) {
  // The minimal simulator is logical-only (§3.1): all operators cost alike.
  double hash = cout_.PlanCost(query_, TwoWay(JoinOp::kHashJoin));
  double merge = cout_.PlanCost(query_, TwoWay(JoinOp::kMergeJoin));
  double nl = cout_.PlanCost(query_, TwoWay(JoinOp::kNLJoin));
  EXPECT_DOUBLE_EQ(hash, merge);
  EXPECT_DOUBLE_EQ(hash, nl);
}

TEST_F(CostModelTest, CoutPrefersSelectiveFirstJoins) {
  // Joining the filtered dimension first beats joining the unfiltered one
  // when the filter is selective (fewer intermediate tuples).
  Plan filtered_first;
  {
    int s = filtered_first.AddScan(0, ScanOp::kSeqScan);
    int c = filtered_first.AddScan(1, ScanOp::kSeqScan);  // region filter
    int sc = filtered_first.AddJoin(s, c, JoinOp::kHashJoin);
    int st = filtered_first.AddScan(3, ScanOp::kSeqScan);  // no filter
    filtered_first.AddJoin(sc, st, JoinOp::kHashJoin);
  }
  Plan unfiltered_first;
  {
    int s = unfiltered_first.AddScan(0, ScanOp::kSeqScan);
    int st = unfiltered_first.AddScan(3, ScanOp::kSeqScan);
    int sst = unfiltered_first.AddJoin(s, st, JoinOp::kHashJoin);
    int c = unfiltered_first.AddScan(1, ScanOp::kSeqScan);
    unfiltered_first.AddJoin(sst, c, JoinOp::kHashJoin);
  }
  EXPECT_LT(cout_.PlanCost(query_, filtered_first),
            cout_.PlanCost(query_, unfiltered_first));
}

TEST_F(CostModelTest, CmmDiscountsScans) {
  Plan p = TwoWay(JoinOp::kHashJoin);
  EXPECT_LT(cmm_.PlanCost(query_, p), cout_.PlanCost(query_, p));
}

TEST_F(CostModelTest, EngineModelDistinguishesOperators) {
  // Unlike C_out, the expert model prices physical operators differently.
  double hash = engine_.PlanCost(query_, TwoWay(JoinOp::kHashJoin));
  double merge = engine_.PlanCost(query_, TwoWay(JoinOp::kMergeJoin));
  double nl = engine_.PlanCost(query_, TwoWay(JoinOp::kNLJoin));
  EXPECT_NE(hash, merge);
  EXPECT_NE(hash, nl);
  EXPECT_NE(merge, nl);
}

TEST_F(CostModelTest, OperatorCostFormulas) {
  EngineCostParams params;
  OperatorCostInput scan;
  scan.is_join = false;
  scan.scan_op = ScanOp::kSeqScan;
  scan.out_rows = 100;
  scan.base_rows = 1000;
  double seq = OperatorCost(params, scan);
  EXPECT_NEAR(seq, 1000 * params.seq_scan_per_row, 1e-9);

  scan.scan_op = ScanOp::kIndexScan;
  scan.index_available = true;
  double idx = OperatorCost(params, scan);
  EXPECT_NEAR(idx, params.index_scan_overhead + 100 * params.index_scan_per_row,
              1e-9);
  // With a selective predicate the index scan wins; without, seq wins.
  EXPECT_LT(idx, seq);

  OperatorCostInput join;
  join.is_join = true;
  join.join_op = JoinOp::kHashJoin;
  join.left_rows = 500;
  join.right_rows = 2000;
  join.out_rows = 800;
  double hash = OperatorCost(params, join);
  EXPECT_GT(hash, 0);

  join.join_op = JoinOp::kNLJoin;
  double nl = OperatorCost(params, join);
  EXPECT_NEAR(nl, 500 * 2000 * params.nl_per_row_pair +
                      800 * params.output_per_row, 1e-6);
}

TEST_F(CostModelTest, IndexNLValidRequiresIndexedKeyJoin) {
  // customer.id (PK) is indexed: sales -> customer index NL is valid.
  EXPECT_TRUE(
      IndexNLValid(fixture_.schema(), query_, TableSet::Single(0), 1));
  // The outer side must actually join with the inner relation.
  EXPECT_FALSE(
      IndexNLValid(fixture_.schema(), query_, TableSet::Single(1), 2));
}

TEST_F(CostModelTest, IndexScanEffectiveOnlyWithIndexableFilter) {
  // region is an attribute without an index -> not effective.
  // (Effectiveness requires an equality/IN filter on an indexed column.)
  bool any = IndexScanEffective(fixture_.schema(), query_, 1);
  // customer's filter is on "region"; only PK/FK columns are indexed.
  EXPECT_FALSE(any);
}

TEST_F(CostModelTest, ExpertModelSkipsInnerScanUnderIndexNL) {
  EXPECT_FALSE(engine_.ChargeInnerScanUnderIndexNL());
  EXPECT_TRUE(cout_.ChargeInnerScanUnderIndexNL());
}

}  // namespace
}  // namespace balsa
