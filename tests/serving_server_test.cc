// OptimizerServer end-to-end: cache hits return the exact plan a fresh beam
// search would produce, concurrent misses for one fingerprint coalesce into
// exactly one planning call, results are invariant to client/planning
// thread counts, and a stats bump means stale plans are never served again.
#include "src/serving/optimizer_server.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/exec/executor.h"
#include "src/serving/query_fingerprint.h"
#include "src/serving/replay_driver.h"
#include "src/sql/parser.h"
#include "test_util.h"

namespace balsa {
namespace {

class OptimizerServerTest : public ::testing::Test {
 protected:
  OptimizerServerTest()
      : fixture_(testing::MakeStarFixture()),
        query_(testing::MakeStarQuery(fixture_.schema())),
        featurizer_(&fixture_.schema(), fixture_.estimator.get()) {
    ValueNetConfig config;
    config.query_dim = featurizer_.query_dim();
    config.node_dim = featurizer_.node_dim();
    config.tree_hidden1 = 16;
    config.tree_hidden2 = 8;
    config.mlp_hidden = 8;
    config.init_seed = 11;
    network_ = std::make_unique<ValueNetwork>(config);
  }

  OptimizerServerOptions SmallOptions() {
    OptimizerServerOptions options;
    options.planner.beam_size = 5;
    options.planner.top_k = 2;
    return options;
  }

  std::unique_ptr<OptimizerServer> MakeServer(
      OptimizerServerOptions options) {
    return std::make_unique<OptimizerServer>(&fixture_.schema(), &featurizer_,
                                             network_.get(),
                                             fixture_.oracle.get(), options);
  }

  /// A filter-variant of the star query (distinct fingerprint per region).
  Query StarVariant(int64_t region) {
    QueryBuilder builder(&fixture_.schema(), "star_v");
    auto query = builder.From("sales", "s")
                     .From("customer", "c")
                     .From("product", "p")
                     .JoinEq("s.customer_id", "c.id")
                     .JoinEq("s.product_id", "p.id")
                     .Filter("c.region", PredOp::kEq, region)
                     .Build();
    BALSA_CHECK(query.ok(), "variant");
    Query q = std::move(query).value();
    q.set_id(static_cast<int>(region));
    return q;
  }

  testing::StarFixture fixture_;
  Query query_;
  Featurizer featurizer_;
  std::unique_ptr<ValueNetwork> network_;
};

TEST_F(OptimizerServerTest, MissThenHitReturnsTheIdenticalPlan) {
  auto server = MakeServer(SmallOptions());
  auto first = server->Optimize(query_);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->cache_hit);
  EXPECT_TRUE(first->plan.Validate());
  EXPECT_EQ(first->plan.RootTables(), query_.AllTables());

  auto second = server->Optimize(query_);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);
  EXPECT_EQ(second->plan.Fingerprint(), first->plan.Fingerprint());
  EXPECT_EQ(second->predicted_ms, first->predicted_ms);

  OptimizerServer::Stats stats = server->stats();
  EXPECT_EQ(stats.requests, 2);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.planned, 1);
}

TEST_F(OptimizerServerTest, ServedPlanMatchesAFreshBeamSearch) {
  auto server = MakeServer(SmallOptions());
  auto served = server->Optimize(query_);
  ASSERT_TRUE(served.ok());

  PlannerOptions planner_options = SmallOptions().planner;
  BeamSearchPlanner fresh(&fixture_.schema(), &featurizer_, network_.get(),
                          planner_options);
  auto direct = fresh.TopK(query_);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(served->plan.Fingerprint(), direct->plans[0].plan.Fingerprint());
  EXPECT_EQ(served->predicted_ms, direct->plans[0].predicted_ms);
}

TEST_F(OptimizerServerTest, ConcurrentMissesCoalesceIntoOnePlanningCall) {
  auto server = MakeServer(SmallOptions());
  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 5;
  std::vector<uint64_t> fingerprints(kThreads * kRequestsPerThread, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRequestsPerThread; ++r) {
        auto result = server->Optimize(query_);
        BALSA_CHECK(result.ok(), result.status().ToString());
        fingerprints[static_cast<size_t>(t * kRequestsPerThread + r)] =
            result->plan.Fingerprint();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // One fingerprint, one stats_version: exactly one beam search ever runs,
  // no matter how the herd interleaves. Everyone else hit the cache or
  // joined the in-flight call.
  OptimizerServer::Stats stats = server->stats();
  EXPECT_EQ(stats.planned, 1);
  EXPECT_EQ(stats.requests, kThreads * kRequestsPerThread);
  EXPECT_EQ(stats.hits + stats.coalesced, stats.requests - 1);
  for (uint64_t fp : fingerprints) EXPECT_EQ(fp, fingerprints[0]);
}

TEST_F(OptimizerServerTest, PlansAreClientAndPoolThreadCountInvariant) {
  // Baseline: one client, one planning thread.
  OptimizerServerOptions base_options = SmallOptions();
  base_options.num_planning_threads = 1;
  auto baseline_server = MakeServer(base_options);
  std::vector<uint64_t> baseline;
  for (int64_t region = 0; region < 4; ++region) {
    auto result = baseline_server->Optimize(StarVariant(region));
    ASSERT_TRUE(result.ok());
    baseline.push_back(result->plan.Fingerprint());
  }

  for (int clients : {2, 4}) {
    for (int pool_threads : {1, 3}) {
      OptimizerServerOptions options = SmallOptions();
      options.num_planning_threads = pool_threads;
      auto server = MakeServer(options);
      std::vector<std::vector<uint64_t>> got(
          static_cast<size_t>(clients), std::vector<uint64_t>(4, 0));
      std::vector<std::thread> threads;
      for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
          for (int64_t region = 0; region < 4; ++region) {
            auto result = server->Optimize(StarVariant(region));
            BALSA_CHECK(result.ok(), result.status().ToString());
            got[static_cast<size_t>(c)][static_cast<size_t>(region)] =
                result->plan.Fingerprint();
          }
        });
      }
      for (std::thread& t : threads) t.join();
      for (int c = 0; c < clients; ++c) {
        EXPECT_EQ(got[static_cast<size_t>(c)], baseline)
            << clients << " clients, " << pool_threads << " pool threads";
      }
    }
  }
}

TEST_F(OptimizerServerTest, StatsBumpInvalidatesWithoutServingStale) {
  auto server = MakeServer(SmallOptions());
  auto before = server->Optimize(query_);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->stats_version, 0);
  ASSERT_TRUE(server->Optimize(query_)->cache_hit);

  fixture_.oracle->BumpGeneration();
  EXPECT_EQ(server->stats_version(), 1);

  auto after = server->Optimize(query_);
  ASSERT_TRUE(after.ok());
  // Replanned under the new generation — the version-0 entry was not served.
  EXPECT_FALSE(after->cache_hit);
  EXPECT_EQ(after->stats_version, 1);
  EXPECT_EQ(server->stats().planned, 2);
  EXPECT_EQ(server->cache().Totals().stale_evictions, 1);

  // Same statistics regime, same plan: nothing about the data changed here.
  EXPECT_EQ(after->plan.Fingerprint(), before->plan.Fingerprint());
  // And the new entry serves at the new version.
  auto again = server->Optimize(query_);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->cache_hit);
  EXPECT_EQ(again->stats_version, 1);
}

TEST_F(OptimizerServerTest, SqlEntryPointSharesSlotsAcrossAliasSpelling) {
  auto server = MakeServer(SmallOptions());
  const std::string sql_a =
      "SELECT * FROM sales s, customer c "
      "WHERE s.customer_id = c.id AND c.region = 2";
  auto first = server->OptimizeSql(sql_a);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->cache_hit);

  // Renamed aliases, reordered FROM list: same fingerprint, cache hit.
  const std::string sql_b =
      "SELECT * FROM customer buyer, sales fact "
      "WHERE fact.customer_id = buyer.id AND buyer.region = 2";
  auto second = server->OptimizeSql(sql_b);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);

  // The served plan must be wired to the *second* query's relation
  // numbering (customer = 0, sales = 1), not the first's: executing it
  // against the second query must work and produce the same result.
  auto query_a = ParseSql(fixture_.schema(), sql_a, "a");
  auto query_b = ParseSql(fixture_.schema(), sql_b, "b");
  ASSERT_TRUE(query_a.ok());
  ASSERT_TRUE(query_b.ok());
  EXPECT_TRUE(second->plan.Validate());
  EXPECT_EQ(second->plan.RootTables(), query_b->AllTables());
  Executor executor(fixture_.db.get());
  auto rows_a = executor.Execute(*query_a, first->plan);
  auto rows_b = executor.Execute(*query_b, second->plan);
  ASSERT_TRUE(rows_a.ok()) << rows_a.status().ToString();
  ASSERT_TRUE(rows_b.ok()) << rows_b.status().ToString();
  EXPECT_EQ(rows_b->NumRows(), rows_a->NumRows());
}

TEST_F(OptimizerServerTest, ReplayDriverReportsConsistentPlans) {
  auto server = MakeServer(SmallOptions());
  std::vector<Query> variants;
  for (int64_t region = 0; region < 3; ++region) {
    variants.push_back(StarVariant(region));
  }
  std::vector<const Query*> queries;
  for (const Query& q : variants) queries.push_back(&q);

  ReplayOptions replay;
  replay.num_clients = 4;
  replay.requests_per_client = 25;
  auto report = ReplayWorkload(server.get(), queries, replay);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->requests, 100);
  EXPECT_TRUE(report->plans_consistent);
  // 3 distinct fingerprints at one stats_version: at most 3 beam searches.
  EXPECT_LE(report->server.planned, 3);
  EXPECT_GT(report->hit_rate, 0.5);
  EXPECT_GT(report->requests_per_sec, 0);
  EXPECT_GE(report->p99_us, report->p50_us);
}

TEST_F(OptimizerServerTest, RewarmRefreshesHottestEntriesAfterBump) {
  auto server = MakeServer(SmallOptions());
  // Heat: region 0 served 4x, region 1 served 2x, region 2 once.
  for (int64_t region = 0; region < 3; ++region) {
    for (int64_t n = 0; n < 4 - region; ++n) {
      ASSERT_TRUE(server->Optimize(StarVariant(region)).ok());
    }
  }
  int64_t planned_before = server->stats().planned;
  EXPECT_EQ(planned_before, 3);

  fixture_.oracle->BumpGeneration();
  OptimizerServer::RewarmReport report = server->Rewarm(/*top_k=*/2);
  EXPECT_EQ(report.candidates, 2);
  EXPECT_EQ(report.replanned, 2);
  EXPECT_EQ(report.failed, 0);
  EXPECT_EQ(server->stats().rewarmed, 2);

  // The two hottest fingerprints now hit at the new version — no client
  // paid for their replanning. The cold one still misses.
  auto hot = server->Optimize(StarVariant(0));
  ASSERT_TRUE(hot.ok());
  EXPECT_TRUE(hot->cache_hit);
  EXPECT_EQ(hot->stats_version, 1);
  auto warm = server->Optimize(StarVariant(1));
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->cache_hit);
  auto cold = server->Optimize(StarVariant(2));
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold->cache_hit);
  EXPECT_EQ(cold->stats_version, 1);

  // A second rewarm finds everything fresh.
  OptimizerServer::RewarmReport again = server->Rewarm(/*top_k=*/2);
  EXPECT_EQ(again.replanned, 0);
  EXPECT_EQ(again.fresh, 2);
}

// The acceptance criterion for the request tracer: one served request,
// followed by executing its plan under the same trace, yields a single
// trace whose spans cover the whole stack — serving (fingerprint, cache
// lookup, admit), planning (beam search), runtime (inference), and the
// executor (scan, join) — with at least 4 distinct stages.
TEST_F(OptimizerServerTest, TracedRequestProducesSpansAcrossTheStack) {
  OptimizerServerOptions options = SmallOptions();
  options.trace.sample_every = 1;  // trace every request
  auto server = MakeServer(options);

  auto result = server->Optimize(query_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->cache_hit);

  auto traces = server->tracer()->RecentTraces();
  ASSERT_EQ(traces.size(), 1u);
  std::shared_ptr<obs::Trace> trace = traces[0];
  // A served miss records its serving- and planning-side spans, including
  // the inference calls made from the planning-pool thread (the trace
  // context crossed the pool boundary with the task).
  EXPECT_TRUE(trace->HasStage(obs::TraceStage::kFingerprint));
  EXPECT_TRUE(trace->HasStage(obs::TraceStage::kCacheLookup));
  EXPECT_TRUE(trace->HasStage(obs::TraceStage::kBeamSearch));
  EXPECT_TRUE(trace->HasStage(obs::TraceStage::kInference));
  EXPECT_TRUE(trace->HasStage(obs::TraceStage::kAdmit));

  // Execute the served plan under the same trace: the executor's scan and
  // join spans land in it too.
  Executor exec(fixture_.db.get());
  {
    obs::ScopedTraceContext scope(server->tracer(), trace);
    auto executed = exec.Execute(query_, result->plan);
    ASSERT_TRUE(executed.ok()) << executed.status().ToString();
  }
  EXPECT_TRUE(trace->HasStage(obs::TraceStage::kExecScan));
  EXPECT_TRUE(trace->HasStage(obs::TraceStage::kExecJoin));
  EXPECT_GE(trace->NumDistinctStages(), 4);

  // The tracer's per-stage histograms saw the same spans (they feed the
  // bench breakdown tables).
  EXPECT_GT(
      server->tracer()->stage_histogram(obs::TraceStage::kBeamSearch).Count(),
      0);
  EXPECT_GT(
      server->tracer()->stage_histogram(obs::TraceStage::kExecScan).Count(),
      0);

  // An untraced server (sampling disabled) records nothing.
  OptimizerServerOptions untraced = SmallOptions();
  untraced.trace.sample_every = 0;
  auto quiet = MakeServer(untraced);
  ASSERT_TRUE(quiet->Optimize(query_).ok());
  EXPECT_TRUE(quiet->tracer()->RecentTraces().empty());
  EXPECT_EQ(quiet->tracer()->traces_started(), 0);
}

// The per-outcome latency histograms replace the old single histogram: each
// request lands in exactly one outcome's distribution.
TEST_F(OptimizerServerTest, LatencyHistogramsSplitByOutcome) {
  auto server = MakeServer(SmallOptions());
  ASSERT_TRUE(server->Optimize(query_).ok());  // miss
  ASSERT_TRUE(server->Optimize(query_).ok());  // hit
  ASSERT_TRUE(server->Optimize(query_).ok());  // hit
  EXPECT_EQ(server->latency(OptimizerServer::Outcome::kMiss).Count(), 1);
  EXPECT_EQ(server->latency(OptimizerServer::Outcome::kHit).Count(), 2);
  EXPECT_EQ(server->latency(OptimizerServer::Outcome::kCoalesced).Count(), 0);
}

}  // namespace
}  // namespace balsa
