#include "src/model/value_network.h"

#include <gtest/gtest.h>

namespace balsa {
namespace {

ValueNetConfig SmallConfig() {
  ValueNetConfig config;
  config.query_dim = 4;
  config.node_dim = 6;
  config.tree_hidden1 = 16;
  config.tree_hidden2 = 8;
  config.mlp_hidden = 8;
  config.init_seed = 7;
  return config;
}

nn::TreeSample Leaf(int node_dim, float fill) {
  nn::TreeSample t;
  t.features = {nn::Vec(static_cast<size_t>(node_dim), fill)};
  t.left = {-1};
  t.right = {-1};
  return t;
}

nn::TreeSample Join(int node_dim, float a, float b) {
  nn::TreeSample t;
  t.features = {nn::Vec(static_cast<size_t>(node_dim), 0.5f),
                nn::Vec(static_cast<size_t>(node_dim), a),
                nn::Vec(static_cast<size_t>(node_dim), b)};
  t.left = {1, -1, -1};
  t.right = {2, -1, -1};
  return t;
}

TEST(ValueNetworkTest, PredictIsDeterministic) {
  ValueNetwork net(SmallConfig());
  nn::Vec q(4, 0.2f);
  auto plan = Join(6, 0.1f, 0.9f);
  EXPECT_EQ(net.Predict(q, plan), net.Predict(q, plan));
}

TEST(ValueNetworkTest, PredictionsNonNegativeUnderLogTransform) {
  ValueNetwork net(SmallConfig());
  nn::Vec q(4, 0.2f);
  // expm1 of any finite output >= -1; labels are latencies >= 0, so the
  // inverse transform keeps predictions above -1.
  EXPECT_GT(net.Predict(q, Leaf(6, -3.f)), -1.0);
}

TEST(ValueNetworkTest, OverfitsTinyDataset) {
  ValueNetwork net(SmallConfig());
  std::vector<TrainingPoint> data;
  for (int i = 0; i < 8; ++i) {
    TrainingPoint pt;
    pt.query = nn::Vec(4, static_cast<float>(i) / 8.f);
    pt.plan = Join(6, static_cast<float>(i % 3), 0.4f);
    pt.label = 10.0 + 100.0 * i;
    data.push_back(std::move(pt));
  }
  ValueNetwork::TrainOptions opts;
  opts.max_epochs = 400;
  opts.val_fraction = 0;  // train on everything; no early stop
  opts.batch_size = 8;
  opts.lr = 5e-3;
  auto result = net.Train(data, opts);
  EXPECT_EQ(result.epochs_run, 400);
  // Predictions land within 30% of labels on this trivially small set.
  for (const TrainingPoint& pt : data) {
    double pred = net.Predict(pt.query, pt.plan);
    EXPECT_NEAR(pred, pt.label, pt.label * 0.3 + 10)
        << "label " << pt.label;
  }
}

TEST(ValueNetworkTest, EarlyStoppingHaltsBeforeMaxEpochs) {
  ValueNetwork net(SmallConfig());
  // Pure noise labels: validation loss cannot improve for long.
  std::vector<TrainingPoint> data;
  Rng rng(3);
  for (int i = 0; i < 60; ++i) {
    TrainingPoint pt;
    pt.query = nn::Vec(4, static_cast<float>(rng.UniformDouble()));
    pt.plan = Leaf(6, static_cast<float>(rng.UniformDouble()));
    pt.label = rng.UniformDouble() * 1000;
    data.push_back(std::move(pt));
  }
  ValueNetwork::TrainOptions opts;
  opts.max_epochs = 500;
  opts.patience = 2;
  auto result = net.Train(data, opts);
  EXPECT_LT(result.epochs_run, 500);
}

TEST(ValueNetworkTest, SgdSampleAccounting) {
  ValueNetwork net(SmallConfig());
  std::vector<TrainingPoint> data(10);
  for (auto& pt : data) {
    pt.query = nn::Vec(4, 0.1f);
    pt.plan = Leaf(6, 0.2f);
    pt.label = 5;
  }
  ValueNetwork::TrainOptions opts;
  opts.max_epochs = 3;
  opts.val_fraction = 0;
  opts.patience = 1000;
  auto result = net.Train(data, opts);
  EXPECT_EQ(result.sgd_samples, 3 * 10);
}

TEST(ValueNetworkTest, CopyWeightsMakesPredictionsAgree) {
  ValueNetwork a(SmallConfig());
  ValueNetConfig cfg = SmallConfig();
  cfg.init_seed = 99;
  ValueNetwork b(cfg);
  nn::Vec q(4, 0.3f);
  auto plan = Join(6, 0.2f, 0.8f);
  EXPECT_NE(a.Predict(q, plan), b.Predict(q, plan));
  ASSERT_TRUE(b.CopyWeightsFrom(a).ok());
  EXPECT_EQ(a.Predict(q, plan), b.Predict(q, plan));
}

TEST(ValueNetworkTest, InitWeightsChangesPredictions) {
  ValueNetwork net(SmallConfig());
  nn::Vec q(4, 0.3f);
  auto plan = Join(6, 0.2f, 0.8f);
  double before = net.Predict(q, plan);
  net.InitWeights(12345);
  EXPECT_NE(net.Predict(q, plan), before);
}

TEST(ValueNetworkTest, SaveLoadRoundTrip) {
  ValueNetwork a(SmallConfig());
  ValueNetConfig cfg = SmallConfig();
  cfg.init_seed = 55;
  ValueNetwork b(cfg);
  std::string path = ::testing::TempDir() + "/value_net.bin";
  ASSERT_TRUE(a.Save(path).ok());
  ASSERT_TRUE(b.Load(path).ok());
  nn::Vec q(4, 0.4f);
  auto plan = Join(6, 0.7f, 0.1f);
  EXPECT_EQ(a.Predict(q, plan), b.Predict(q, plan));
}

TEST(ValueNetworkTest, RawLabelSpaceSupported) {
  ValueNetConfig cfg = SmallConfig();
  cfg.log_transform = false;
  ValueNetwork net(cfg);
  std::vector<TrainingPoint> data(12);
  for (auto& pt : data) {
    pt.query = nn::Vec(4, 0.1f);
    pt.plan = Leaf(6, 0.2f);
    pt.label = 7.0;
  }
  ValueNetwork::TrainOptions opts;
  opts.max_epochs = 200;
  opts.val_fraction = 0;
  opts.lr = 5e-3;
  net.Train(data, opts);
  EXPECT_NEAR(net.Predict(data[0].query, data[0].plan), 7.0, 1.0);
}

}  // namespace
}  // namespace balsa
