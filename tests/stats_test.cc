#include "src/stats/cardinality_estimator.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/stats/table_stats.h"
#include "test_util.h"

namespace balsa {
namespace {

class StatsTest : public ::testing::Test {
 protected:
  StatsTest()
      : fixture_(testing::MakeStarFixture()),
        executor_(fixture_.db.get()) {}

  // True filtered row count via the executor.
  double TrueScanRows(const Query& q, int rel) {
    auto scan = executor_.Scan(q, rel);
    return static_cast<double>(scan->NumRows());
  }

  Query OneFilterQuery(const std::string& table, const std::string& col,
                       PredOp op, int64_t value, int id) {
    QueryBuilder b(&fixture_.schema(), "f");
    auto q = b.From(table, "x").Filter("x." + col, op, value).Build();
    BALSA_CHECK(q.ok(), "build");
    Query query = std::move(q).value();
    query.set_id(id);
    return query;
  }

  testing::StarFixture fixture_;
  Executor executor_;
};

TEST_F(StatsTest, AnalyzePopulatesAllTables) {
  const auto& stats = fixture_.estimator->stats();
  ASSERT_EQ(stats.size(),
            static_cast<size_t>(fixture_.schema().num_tables()));
  for (int t = 0; t < fixture_.schema().num_tables(); ++t) {
    EXPECT_EQ(stats[t].row_count, fixture_.db->row_count(t));
    EXPECT_EQ(stats[t].columns.size(),
              fixture_.schema().table(t).columns.size());
  }
}

TEST_F(StatsTest, AnalyzeStampsStatsVersion) {
  // Default ANALYZE produces generation-0 statistics.
  for (const TableStats& ts : fixture_.estimator->stats()) {
    EXPECT_EQ(ts.stats_version, 0);
  }
  // A re-ANALYZE after a stats bump stamps the new generation, which is
  // what lets the serving plan cache detect plans built on stale estimates.
  AnalyzeOptions opts;
  opts.stats_version = 3;
  auto stats = Analyze(*fixture_.db, opts);
  ASSERT_TRUE(stats.ok());
  for (const TableStats& ts : *stats) {
    EXPECT_EQ(ts.stats_version, 3);
  }
}

TEST_F(StatsTest, DistinctCountOfPrimaryKeyIsRowCount) {
  int cust = fixture_.schema().TableIndex("customer");
  const ColumnStats& pk = fixture_.estimator->stats()[cust].columns[0];
  EXPECT_EQ(pk.num_distinct, fixture_.db->row_count(cust));
}

TEST_F(StatsTest, EqualitySelectivityNearTruthOnMcv) {
  // Region 0 is the most common value under Zipf skew -> it is in the MCV
  // list, so the estimate should be nearly exact.
  Query q = OneFilterQuery("customer", "region", PredOp::kEq, 0, 900);
  double est = fixture_.estimator->EstimateScanRows(q, 0);
  double truth = TrueScanRows(q, 0);
  EXPECT_NEAR(est, truth, std::max(2.0, truth * 0.1));
}

TEST_F(StatsTest, RangeSelectivityReasonable) {
  Query q = OneFilterQuery("sales", "amount", PredOp::kLt, 50, 901);
  double est = fixture_.estimator->EstimateScanRows(q, 0);
  double truth = TrueScanRows(q, 0);
  // Histogram estimate within 2x of truth.
  EXPECT_GT(est, truth * 0.5);
  EXPECT_LT(est, truth * 2.0);
}

TEST_F(StatsTest, InSelectivityIsSumOfEqs) {
  QueryBuilder b(&fixture_.schema(), "in");
  auto q = b.From("customer", "c").FilterIn("c.region", {0, 1, 2}).Build();
  ASSERT_TRUE(q.ok());
  q->set_id(902);
  double in_est = fixture_.estimator->EstimateScanRows(*q, 0);
  double sum = 0;
  for (int64_t v : {0, 1, 2}) {
    Query eq = OneFilterQuery("customer", "region", PredOp::kEq, v,
                              903 + static_cast<int>(v));
    sum += fixture_.estimator->EstimateScanRows(eq, 0);
  }
  EXPECT_NEAR(in_est, sum, sum * 0.05 + 1);
}

TEST_F(StatsTest, SelectivityIsOneWithoutFilters) {
  Query star = testing::MakeStarQuery(fixture_.schema(), 905);
  EXPECT_DOUBLE_EQ(fixture_.estimator->EstimateSelectivity(star, 0), 1.0);
  EXPECT_LT(fixture_.estimator->EstimateSelectivity(star, 1), 1.0);
}

TEST_F(StatsTest, FkJoinEstimateNearTruthWithoutFilters) {
  // sales JOIN customer on FK is ~ |sales| (every FK matches a PK).
  QueryBuilder b(&fixture_.schema(), "fk");
  auto q = b.From("sales", "s").From("customer", "c")
               .JoinEq("s.customer_id", "c.id")
               .Build();
  ASSERT_TRUE(q.ok());
  q->set_id(906);
  double est =
      fixture_.estimator->EstimateJoinRows(*q, TableSet::FirstN(2));
  Executor ex(fixture_.db.get());
  auto s = ex.Scan(*q, 0);
  auto c = ex.Scan(*q, 1);
  auto j = ex.Join(*q, *s, *c);
  double truth = static_cast<double>(j->NumRows());
  EXPECT_GT(est, truth * 0.3);
  EXPECT_LT(est, truth * 3.0);
}

TEST_F(StatsTest, SkewedJoinEstimatesErr) {
  // With a filtered dimension and Zipf-skewed FK fan-in, the independence
  // assumption must show error — that inaccuracy is what the paper's
  // simulator tolerates (§3.3). We only require the estimate to be finite
  // and positive, and record that it deviates from truth.
  Query star = testing::MakeStarQuery(fixture_.schema(), 907);
  double est = fixture_.estimator->EstimateJoinRows(star, star.AllTables());
  EXPECT_GT(est, 0);
  EXPECT_TRUE(std::isfinite(est));
}

TEST_F(StatsTest, NoisyEstimatorDeterministicAndBounded) {
  auto noisy = std::make_shared<NoisyCardinalityEstimator>(
      fixture_.estimator, /*median_noise_factor=*/5.0);
  Query star = testing::MakeStarQuery(fixture_.schema(), 908);
  double base = fixture_.estimator->EstimateJoinRows(star, star.AllTables());
  double n1 = noisy->EstimateJoinRows(star, star.AllTables());
  double n2 = noisy->EstimateJoinRows(star, star.AllTables());
  EXPECT_EQ(n1, n2);  // deterministic per (query, set)
  EXPECT_NE(n1, base);
  EXPECT_GT(n1, 0);
}

TEST_F(StatsTest, SampledAnalyzeStillReasonable) {
  AnalyzeOptions opts;
  opts.sample_rows = 500;
  auto stats = Analyze(*fixture_.db, opts);
  ASSERT_TRUE(stats.ok());
  int cust = fixture_.schema().TableIndex("customer");
  // Row count must still be the real one (sampling scales frequencies).
  EXPECT_EQ((*stats)[cust].row_count, fixture_.db->row_count(cust));
}

}  // namespace
}  // namespace balsa
