#include "src/util/status.h"

#include <gtest/gtest.h>

namespace balsa {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing table");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing table");
  EXPECT_EQ(s.ToString(), "NotFound: missing table");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::TimedOut("x").code(), StatusCode::kTimedOut);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::Internal("boom");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInternal);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(5);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 5);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  BALSA_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(StatusMacrosTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseHalf(8, &out).ok());
  EXPECT_EQ(out, 4);
  Status bad = UseHalf(7, &out);
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
}

Status Chain(bool fail) {
  BALSA_RETURN_IF_ERROR(fail ? Status::TimedOut("t") : Status::OK());
  return Status::OK();
}

TEST(StatusMacrosTest, ReturnIfError) {
  EXPECT_TRUE(Chain(false).ok());
  EXPECT_EQ(Chain(true).code(), StatusCode::kTimedOut);
}

}  // namespace
}  // namespace balsa
