#include "src/optimizer/dp_optimizer.h"

#include <gtest/gtest.h>

#include "src/baselines/random_planner.h"
#include "test_util.h"

namespace balsa {
namespace {

class DpOptimizerTest : public ::testing::Test {
 protected:
  DpOptimizerTest()
      : fixture_(testing::MakeStarFixture()),
        query_(testing::MakeStarQuery(fixture_.schema())),
        cout_(fixture_.estimator, &fixture_.schema()) {}

  testing::StarFixture fixture_;
  Query query_;
  CoutCostModel cout_;
};

TEST_F(DpOptimizerTest, ProducesValidCompletePlan) {
  DpOptimizer dp(&fixture_.schema(), &cout_);
  auto best = dp.Optimize(query_);
  ASSERT_TRUE(best.ok()) << best.status().ToString();
  EXPECT_TRUE(best->plan.Validate());
  EXPECT_EQ(best->plan.RootTables(), query_.AllTables());
  EXPECT_GT(best->cost, 0);
}

TEST_F(DpOptimizerTest, BeatsRandomPlansOnAverage) {
  DpOptimizer dp(&fixture_.schema(), &cout_);
  auto best = dp.Optimize(query_);
  ASSERT_TRUE(best.ok());
  RandomPlanner random(&fixture_.schema());
  Rng rng(3);
  int not_worse = 0;
  const int kTrials = 20;
  for (int i = 0; i < kTrials; ++i) {
    auto plan = random.Sample(query_, &rng);
    ASSERT_TRUE(plan.ok());
    not_worse += cout_.PlanCost(query_, *plan) >= best->cost - 1e-6;
  }
  EXPECT_EQ(not_worse, kTrials);  // DP is exact under the cost model
}

TEST_F(DpOptimizerTest, LeftDeepRestrictionHolds) {
  DpOptimizerOptions opts;
  opts.bushy = false;
  DpOptimizer dp(&fixture_.schema(), &cout_, opts);
  auto best = dp.Optimize(query_);
  ASSERT_TRUE(best.ok());
  EXPECT_TRUE(best->plan.IsLeftDeep());
}

TEST_F(DpOptimizerTest, BushyCostNeverAboveLeftDeep) {
  DpOptimizer bushy(&fixture_.schema(), &cout_);
  DpOptimizerOptions ld_opts;
  ld_opts.bushy = false;
  DpOptimizer left_deep(&fixture_.schema(), &cout_, ld_opts);
  auto b = bushy.Optimize(query_);
  auto l = left_deep.Optimize(query_);
  ASSERT_TRUE(b.ok() && l.ok());
  EXPECT_LE(b->cost, l->cost + 1e-9);  // superset search space
}

TEST_F(DpOptimizerTest, OperatorRestrictionsRespected) {
  DpOptimizerOptions opts;
  opts.enable_hash_join = false;
  opts.enable_merge_join = false;
  opts.enable_index_nl = false;
  DpOptimizer dp(&fixture_.schema(), &cout_, opts);
  auto best = dp.Optimize(query_);
  ASSERT_TRUE(best.ok());
  std::vector<int> joins, scans;
  best->plan.CountOps(&joins, &scans);
  EXPECT_EQ(joins[static_cast<int>(JoinOp::kHashJoin)], 0);
  EXPECT_EQ(joins[static_cast<int>(JoinOp::kMergeJoin)], 0);
  EXPECT_EQ(joins[static_cast<int>(JoinOp::kIndexNLJoin)], 0);
  EXPECT_EQ(joins[static_cast<int>(JoinOp::kNLJoin)], 3);
}

TEST_F(DpOptimizerTest, EnumerateAllStreamsEveryDpCell) {
  DpOptimizerOptions opts;
  opts.enable_merge_join = false;
  opts.enable_index_nl = false;
  opts.enable_nl_join = false;
  DpOptimizer dp(&fixture_.schema(), &cout_, opts);
  std::set<uint64_t> scopes;
  int num_plans = 0;
  double first_cost = -1;
  auto st = dp.EnumerateAll(
      query_, [&](const Query& /*q*/, TableSet scope, const Plan& plan,
                  double cost) {
        EXPECT_EQ(plan.RootTables(), scope);
        EXPECT_GT(cost, 0);
        scopes.insert(scope.bits());
        num_plans++;
        if (first_cost < 0) first_cost = cost;
      });
  ASSERT_TRUE(st.ok());
  // All connected subsets of the star join appear: the fact alone, each
  // dim alone, fact+dims combos: 4 singles + 3 pairs + 3 triples + 1 full.
  EXPECT_EQ(scopes.size(), 11u);
  // Far more plans than cells (suboptimal candidates are streamed too).
  EXPECT_GT(num_plans, static_cast<int>(scopes.size()));
}

TEST_F(DpOptimizerTest, EnumerationIncludesSuboptimalPlans) {
  DpOptimizer dp(&fixture_.schema(), &cout_);
  double best_cost = dp.Optimize(query_)->cost;
  bool saw_suboptimal = false;
  auto st = dp.EnumerateAll(
      query_, [&](const Query&, TableSet scope, const Plan&, double cost) {
        if (scope == query_.AllTables() && cost > best_cost * 1.01) {
          saw_suboptimal = true;
        }
      });
  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(saw_suboptimal);
}

TEST_F(DpOptimizerTest, GreedyFallbackForLargeQueries) {
  DpOptimizerOptions opts;
  opts.max_exact_relations = 2;  // force greedy on the 4-way star
  DpOptimizer dp(&fixture_.schema(), &cout_, opts);
  auto best = dp.Optimize(query_);
  ASSERT_TRUE(best.ok());
  EXPECT_TRUE(best->plan.Validate());
  EXPECT_EQ(best->plan.RootTables(), query_.AllTables());
}

TEST_F(DpOptimizerTest, SingleRelationQuery) {
  QueryBuilder b(&fixture_.schema(), "single");
  auto q = b.From("customer", "c").Filter("c.region", PredOp::kEq, 1).Build();
  ASSERT_TRUE(q.ok());
  q->set_id(30);
  DpOptimizer dp(&fixture_.schema(), &cout_);
  auto best = dp.Optimize(*q);
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best->plan.NumJoins(), 0);
}

}  // namespace
}  // namespace balsa
