// Incremental re-ANALYZE: merging change-stream sketches into TableStats
// must track a full rescan — exactly for row counts/min/max, approximately
// for NDV and histogram-derived selectivities.
#include "src/stats/incremental_analyze.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/plan/query_builder.h"
#include "src/stats/cardinality_estimator.h"
#include "src/stats/swappable_estimator.h"
#include "src/storage/change_log.h"
#include "src/util/logging.h"
#include "src/util/rng.h"

namespace balsa {
namespace {

class IncrementalAnalyzeTest : public ::testing::Test {
 protected:
  IncrementalAnalyzeTest() {
    Schema schema;
    ColumnDef id;
    id.name = "id";
    id.kind = ColumnKind::kPrimaryKey;
    ColumnDef v;
    v.name = "v";
    v.kind = ColumnKind::kAttribute;
    BALSA_CHECK(schema.AddTable({"t", 2000, {id, v}}).ok(), "table");
    db_ = std::make_unique<Database>(std::move(schema));
    // Base data: v uniform-ish over [0, 100).
    TableData data;
    data.row_count = 2000;
    data.columns.resize(2);
    Rng rng(7);
    for (int64_t r = 0; r < 2000; ++r) {
      data.columns[0].push_back(r);
      data.columns[1].push_back(static_cast<int64_t>(rng.Uniform(100)));
    }
    BALSA_CHECK(db_->SetTableData(0, std::move(data)).ok(), "data");
    auto stats = AnalyzeTable(*db_, 0);
    BALSA_CHECK(stats.ok(), "analyze");
    base_ = std::move(stats).value();
  }

  /// Drifts the table: appends `n` rows with v in the shifted domain
  /// [200, 300), recorded through the change log against base_'s anchor.
  std::unique_ptr<ChangeLog> DriftedLog(int64_t n) {
    auto log = std::make_unique<ChangeLog>(db_.get());
    log->SetAnchor(0, MakeTableAnchor(base_));
    Rng rng(13);
    std::vector<std::vector<int64_t>> rows;
    for (int64_t i = 0; i < n; ++i) {
      rows.push_back(
          {2000 + i, 200 + static_cast<int64_t>(rng.Uniform(100))});
    }
    BALSA_CHECK(log->InsertRows(0, rows).ok(), "insert");
    return log;
  }

  double ScanEstimate(const CardinalityEstimator& est, PredOp op,
                      int64_t value) {
    QueryBuilder builder(&db_->schema(), "probe");
    auto query = builder.From("t").Filter("t.v", op, value).Build();
    BALSA_CHECK(query.ok(), "probe query");
    return est.EstimateScanRows(*query, 0);
  }

  std::unique_ptr<Database> db_;
  TableStats base_;
};

TEST_F(IncrementalAnalyzeTest, MergeTracksFullRescan) {
  auto log_ptr = DriftedLog(1000);
  ChangeLog& log = *log_ptr;
  TableStats merged =
      MergeTableDelta(base_, log.anchor(0), log.Snapshot(0), /*version=*/5);
  auto full = AnalyzeTable(*db_, 0);
  ASSERT_TRUE(full.ok());

  EXPECT_EQ(merged.stats_version, 5);
  EXPECT_EQ(merged.row_count, full->row_count);  // 3000, exact
  const ColumnStats& mv = merged.columns[1];
  const ColumnStats& fv = full->columns[1];
  EXPECT_EQ(mv.min_value, fv.min_value);
  EXPECT_EQ(mv.max_value, fv.max_value);  // extended to ~299
  // ~200 distinct values; HLL keeps the merged NDV within 20% of truth.
  EXPECT_NEAR(static_cast<double>(mv.num_distinct),
              static_cast<double>(fv.num_distinct),
              0.2 * static_cast<double>(fv.num_distinct));

  // Histogram mass moved into the new [200, 300) region: selectivity
  // estimates from merged stats track the full rescan within a few percent
  // of the table.
  CardinalityEstimator merged_est(&db_->schema(), {merged, merged});
  CardinalityEstimator full_est(&db_->schema(), {*full, *full});
  for (int64_t cut : {50, 150, 250}) {
    double m = ScanEstimate(merged_est, PredOp::kLt, cut);
    double f = ScanEstimate(full_est, PredOp::kLt, cut);
    EXPECT_NEAR(m, f, 0.08 * static_cast<double>(full->row_count))
        << "v < " << cut;
  }
}

TEST_F(IncrementalAnalyzeTest, StaleStatsMisestimateDriftedRegion) {
  // The motivating failure: without the merge, the old histogram assigns
  // ~zero mass above 100 and underestimates the whole table's growth.
  auto log_ptr = DriftedLog(1000);
  ChangeLog& log = *log_ptr;
  CardinalityEstimator stale_est(&db_->schema(), {base_, base_});
  TableStats merged =
      MergeTableDelta(base_, log.anchor(0), log.Snapshot(0), 1);
  CardinalityEstimator merged_est(&db_->schema(), {merged, merged});

  // True count of v >= 200 is 1000 (every drifted row).
  double stale = ScanEstimate(stale_est, PredOp::kGe, 200);
  double fresh = ScanEstimate(merged_est, PredOp::kGe, 200);
  EXPECT_LT(stale, 100.0);   // stale stats: essentially nothing up there
  EXPECT_GT(fresh, 700.0);   // merged stats: most of the drifted mass
  EXPECT_LT(fresh, 1300.0);
}

TEST_F(IncrementalAnalyzeTest, DeletesAndUpdatesAdjustCounts) {
  ChangeLog log(db_.get());
  log.SetAnchor(0, MakeTableAnchor(base_));
  std::vector<int64_t> victims;
  for (int64_t r = 0; r < 400; ++r) victims.push_back(r * 3);
  ASSERT_TRUE(log.DeleteRows(0, victims).ok());
  ASSERT_TRUE(log.UpdateValues(0, 1, {{0, 50}, {1, 51}}).ok());

  TableStats merged =
      MergeTableDelta(base_, log.anchor(0), log.Snapshot(0), 2);
  EXPECT_EQ(merged.row_count, db_->row_count(0));  // 1600
  TableDelta delta = log.Snapshot(0);
  EXPECT_EQ(delta.rows_deleted, 400);
  EXPECT_EQ(delta.rows_updated, 2);
  // NDV never shrinks incrementally (documented approximation).
  EXPECT_GE(merged.columns[1].num_distinct, base_.columns[1].num_distinct);
}

TEST_F(IncrementalAnalyzeTest, SwappableEstimatorSwapsSnapshots) {
  auto stale = std::make_shared<const CardinalityEstimator>(
      &db_->schema(), std::vector<TableStats>{base_, base_});
  SwappableEstimator swappable(stale);

  auto log_ptr = DriftedLog(1000);
  ChangeLog& log = *log_ptr;
  TableStats merged =
      MergeTableDelta(base_, log.anchor(0), log.Snapshot(0), 1);
  auto fresh = std::make_shared<const CardinalityEstimator>(
      &db_->schema(), std::vector<TableStats>{merged, merged});

  QueryBuilder builder(&db_->schema(), "probe");
  auto query = builder.From("t").Filter("t.v", PredOp::kGe, 200).Build();
  ASSERT_TRUE(query.ok());
  double before = swappable.EstimateScanRows(*query, 0);
  swappable.Swap(fresh);
  double after = swappable.EstimateScanRows(*query, 0);
  EXPECT_LT(before, 100.0);
  EXPECT_GT(after, 700.0);
  EXPECT_EQ(swappable.current().get(), fresh.get());
}

}  // namespace
}  // namespace balsa
