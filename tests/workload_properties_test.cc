// Property sweeps over the generated JOB-like workload on a tiny database:
// every query must survive estimation, random planning, DP optimization,
// and execution, and the executor's result cardinality must be invariant to
// plan shape. These invariants are what the learning loop silently relies
// on for all 113 queries.
#include <gtest/gtest.h>

#include "src/baselines/random_planner.h"
#include "src/harness/env.h"
#include "src/util/logging.h"

namespace balsa {
namespace {

Env& SharedEnv() {
  static Env* env = [] {
    EnvOptions options;
    options.data_scale = 0.03;  // tiny: property sweeps visit many queries
    auto result = MakeEnv(WorkloadKind::kJobRandomSplit, options);
    BALSA_CHECK(result.ok(), result.status().ToString());
    return result->release();
  }();
  return *env;
}

class QueryPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(QueryPropertyTest, EstimatesFiniteAndPositive) {
  Env& env = SharedEnv();
  const Query& q = env.workload.query(GetParam());
  for (int rel = 0; rel < q.num_relations(); ++rel) {
    double rows = env.estimator->EstimateScanRows(q, rel);
    EXPECT_GE(rows, 0) << q.name();
    double sel = env.estimator->EstimateSelectivity(q, rel);
    EXPECT_GE(sel, 0);
    EXPECT_LE(sel, 1.0 + 1e-9);
  }
  double joined = env.estimator->EstimateJoinRows(q, q.AllTables());
  EXPECT_TRUE(std::isfinite(joined)) << q.name();
  EXPECT_GE(joined, 0);
}

TEST_P(QueryPropertyTest, RandomAndExpertPlansExecuteToSameCardinality) {
  Env& env = SharedEnv();
  const Query& q = env.workload.query(GetParam());
  auto expert = env.pg_expert->Optimize(q);
  ASSERT_TRUE(expert.ok()) << q.name();
  RandomPlanner random(&env.schema());
  Rng rng(GetParam());
  auto rnd = random.Sample(q, &rng);
  ASSERT_TRUE(rnd.ok()) << q.name();

  auto cards_a = env.oracle->PlanCardinalities(q, expert->plan);
  auto cards_b = env.oracle->PlanCardinalities(q, *rnd);
  ASSERT_TRUE(cards_a.ok() && cards_b.ok()) << q.name();
  // Root cardinality is plan-shape invariant (unless capped).
  if (!cards_a->at(expert->plan.root()).capped &&
      !cards_b->at(rnd->root()).capped) {
    EXPECT_EQ(cards_a->at(expert->plan.root()).rows,
              cards_b->at(rnd->root()).rows)
        << q.name();
  }
}

TEST_P(QueryPropertyTest, ExpertPlanIsValidAndExecutable) {
  Env& env = SharedEnv();
  const Query& q = env.workload.query(GetParam());
  auto expert = env.pg_expert->Optimize(q);
  ASSERT_TRUE(expert.ok()) << q.name();
  EXPECT_TRUE(expert->plan.Validate()) << q.name();
  auto latency = env.pg_engine->NoiselessLatency(q, expert->plan);
  ASSERT_TRUE(latency.ok()) << q.name();
  EXPECT_GT(*latency, 0);

  // The CommDB expert must emit left-deep plans its engine accepts.
  auto commdb = env.commdb_expert->Optimize(q);
  ASSERT_TRUE(commdb.ok()) << q.name();
  EXPECT_TRUE(env.commdb_engine->AcceptsPlan(commdb->plan)) << q.name();
}

// Sweep a representative sample: all sizes appear (every 7th query).
INSTANTIATE_TEST_SUITE_P(JobSample, QueryPropertyTest,
                         ::testing::Range(0, 113, 5));

TEST(WorkloadPropertyTest, EveryQueryIdMatchesIndex) {
  Env& env = SharedEnv();
  for (int i = 0; i < env.workload.num_queries(); ++i) {
    EXPECT_EQ(env.workload.query(i).id(), i);
  }
}

TEST(WorkloadPropertyTest, ExtJobQueriesEstimateAndPlan) {
  Env& env = SharedEnv();
  for (const Query& q : env.ext_workload.queries()) {
    auto expert = env.pg_expert->Optimize(q);
    ASSERT_TRUE(expert.ok()) << q.name();
    auto latency = env.pg_engine->NoiselessLatency(q, expert->plan);
    EXPECT_TRUE(latency.ok()) << q.name();
  }
}

}  // namespace
}  // namespace balsa
