#include <gtest/gtest.h>
#include <set>

#include "src/baselines/bao_like.h"
#include "src/baselines/random_planner.h"
#include "src/harness/env.h"
#include "test_util.h"

namespace balsa {
namespace {

TEST(RandomPlannerTest, ProducesValidPlans) {
  auto fixture = testing::MakeStarFixture();
  Query query = testing::MakeStarQuery(fixture.schema());
  RandomPlanner planner(&fixture.schema());
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    auto plan = planner.Sample(query, &rng);
    ASSERT_TRUE(plan.ok());
    EXPECT_TRUE(plan->Validate());
    EXPECT_EQ(plan->RootTables(), query.AllTables());
  }
}

TEST(RandomPlannerTest, CoversDiversePlans) {
  auto fixture = testing::MakeStarFixture();
  Query query = testing::MakeStarQuery(fixture.schema());
  RandomPlanner planner(&fixture.schema());
  Rng rng(2);
  std::set<uint64_t> fingerprints;
  for (int i = 0; i < 100; ++i) {
    auto plan = planner.Sample(query, &rng);
    ASSERT_TRUE(plan.ok());
    fingerprints.insert(plan->Fingerprint());
  }
  EXPECT_GT(fingerprints.size(), 30u);  // the space is explored broadly
}

TEST(RandomPlannerTest, LeftDeepModeHolds) {
  auto fixture = testing::MakeStarFixture();
  Query query = testing::MakeStarQuery(fixture.schema());
  RandomPlannerOptions options;
  options.bushy = false;
  RandomPlanner planner(&fixture.schema(), options);
  Rng rng(3);
  for (int i = 0; i < 30; ++i) {
    auto plan = planner.Sample(query, &rng);
    ASSERT_TRUE(plan.ok());
    EXPECT_TRUE(plan->IsLeftDeep());
  }
}

class BaoTest : public ::testing::Test {
 protected:
  static Env& SharedEnv() {
    static Env* env = [] {
      EnvOptions options;
      options.data_scale = 0.05;
      auto result = MakeEnv(WorkloadKind::kJobRandomSplit, options);
      BALSA_CHECK(result.ok(), result.status().ToString());
      return result->release();
    }();
    return *env;
  }
};

TEST_F(BaoTest, ArmLatticeShape) {
  Env& env = SharedEnv();
  BaoOptions options;
  BaoAgent agent(&env.schema(), env.pg_engine.get(),
                 env.pg_expert_model.get(), env.estimator.get(),
                 &env.workload, options);
  // 15 join subsets x {bushy, left-deep} on the bushy-capable engine.
  EXPECT_EQ(agent.num_arms(), 30);

  BaoAgent commdb_agent(&env.schema(), env.commdb_engine.get(),
                        env.commdb_expert_model.get(), env.estimator.get(),
                        &env.workload, options);
  EXPECT_EQ(commdb_agent.num_arms(), 15);
}

TEST_F(BaoTest, TrainsAndPlans) {
  Env& env = SharedEnv();
  BaoOptions options;
  options.iterations = 2;
  options.train.max_epochs = 4;
  BaoAgent agent(&env.schema(), env.pg_engine.get(),
                 env.pg_expert_model.get(), env.estimator.get(),
                 &env.workload, options);
  ASSERT_TRUE(agent.Train().ok());
  for (int i : {0, 7}) {
    auto plan = agent.PlanBest(env.workload.query(i));
    ASSERT_TRUE(plan.ok());
    EXPECT_TRUE(plan->Validate());
    EXPECT_TRUE(env.pg_engine->AcceptsPlan(*plan));
  }
  auto runtime = agent.EvaluateWorkload(env.workload.TestQueries());
  ASSERT_TRUE(runtime.ok());
  EXPECT_GT(*runtime, 0);
}

TEST_F(BaoTest, BootstrapRequiredBeforeIterations) {
  Env& env = SharedEnv();
  BaoAgent agent(&env.schema(), env.pg_engine.get(),
                 env.pg_expert_model.get(), env.estimator.get(),
                 &env.workload, BaoOptions());
  EXPECT_FALSE(agent.RunIteration().ok());
}

}  // namespace
}  // namespace balsa
