#include "src/util/rng.h"

#include <gtest/gtest.h>

namespace balsa {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    (void)c.Next();
  }
  Rng a2(7), c2(8);
  EXPECT_NE(a2.Next(), c2.Next());
}

TEST(RngTest, UniformDoubleInRange) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(2);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    hit_lo |= v == 3;
    hit_hi |= v == 7;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng rng(3);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(4);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, CategoricalProportions) {
  Rng rng(5);
  std::vector<double> weights{1.0, 3.0};
  int ones = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) ones += rng.Categorical(weights) == 1;
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(6);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.Shuffle(&v);
  auto shuffled_sorted = v;
  std::sort(shuffled_sorted.begin(), shuffled_sorted.end());
  EXPECT_EQ(shuffled_sorted, sorted);
}

TEST(ZipfTest, UniformWhenSkewZero) {
  ZipfGenerator zipf(10, 0.0);
  Rng rng(7);
  std::vector<int> counts(10, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) counts[zipf.Sample(&rng)]++;
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.02);
  }
}

TEST(ZipfTest, SkewConcentratesOnLowRanks) {
  ZipfGenerator zipf(1000, 1.2);
  Rng rng(8);
  int rank0 = 0, tail = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    uint64_t v = zipf.Sample(&rng);
    rank0 += v == 0;
    tail += v >= 500;
  }
  EXPECT_GT(rank0, n / 20);  // rank 0 is very common
  EXPECT_LT(tail, n / 10);   // the tail is rare
}

TEST(ZipfTest, SamplesAlwaysInDomain) {
  ZipfGenerator zipf(17, 0.9);
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Sample(&rng), 17u);
}

}  // namespace
}  // namespace balsa
