// The parallel execution runtime: thread pool, ParallelFor partitioning,
// ParallelExecutor status propagation, and the determinism contract — with
// fixed seeds, results are identical for every thread count, because index
// assignment is static and per-task rngs derive only from task indices.
#include "src/util/thread_pool.h"

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

#include "src/balsa/simulation.h"
#include "src/runtime/parallel_executor.h"
#include "src/util/parallel_for.h"
#include "src/util/rng.h"
#include "test_util.h"

namespace balsa {
namespace {

TEST(ThreadPoolTest, SubmitReturnsFutureResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, DestructorDrainsScheduledWork) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Schedule([&ran] { ran++; });
    }
  }  // ~ThreadPool must run every queued task before joining.
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1);
  EXPECT_EQ(pool.num_threads(), ThreadPool::DefaultNumThreads());
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    std::vector<int> hits(1000, 0);
    ParallelFor(&pool, hits.size(),
                [&](size_t i) { hits[i]++; });
    for (int h : hits) EXPECT_EQ(h, 1);
  }
}

TEST(ParallelForTest, NullPoolRunsInline) {
  std::vector<int> hits(10, 0);
  ParallelFor(nullptr, hits.size(), [&](size_t i) { hits[i]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, SeededTasksAreThreadCountInvariant) {
  // Per-index rngs seeded from the index alone: the output vector must be
  // identical no matter how many threads execute it.
  auto run = [](int threads) {
    ThreadPool pool(threads);
    std::vector<uint64_t> out(512);
    ParallelFor(&pool, out.size(), [&](size_t i) {
      Rng rng(1234 + i);
      out[i] = rng.Next() ^ rng.Next();
    });
    return out;
  };
  std::vector<uint64_t> baseline = run(1);
  EXPECT_EQ(run(2), baseline);
  EXPECT_EQ(run(5), baseline);
}

TEST(ParallelExecutorTest, ReportsConfiguredThreads) {
  ParallelExecutor executor(ParallelExecutorOptions{3});
  EXPECT_EQ(executor.num_threads(), 3);
}

TEST(ParallelExecutorTest, ForEachRunsAllTasksOnSuccess) {
  ParallelExecutor executor(ParallelExecutorOptions{4});
  std::vector<int> done(100, 0);
  Status st = executor.ForEach(done.size(), [&](size_t i) {
    done[i] = static_cast<int>(i) + 1;
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  for (size_t i = 0; i < done.size(); ++i) {
    EXPECT_EQ(done[i], static_cast<int>(i) + 1);
  }
}

TEST(ParallelExecutorTest, ForEachReturnsLowestIndexError) {
  ParallelExecutor executor(ParallelExecutorOptions{4});
  Status st = executor.ForEach(32, [&](size_t i) -> Status {
    if (i == 7 || i == 21) {
      return Status::Internal("task " + std::to_string(i));
    }
    return Status::OK();
  });
  ASSERT_FALSE(st.ok());
  // Deterministic winner: the lowest failing index, not whichever thread
  // finished first.
  EXPECT_EQ(st.message(), "task 7");
}

TEST(SimulationCollectionTest, DatasetIsThreadCountInvariant) {
  testing::StarFixture fixture = testing::MakeStarFixture();
  Query query = testing::MakeStarQuery(fixture.schema());
  Featurizer featurizer(&fixture.schema(), fixture.estimator.get());
  CoutCostModel cout(fixture.estimator, &fixture.schema());

  auto collect = [&](int threads) {
    SimulationOptions options;
    options.max_points_per_query = 60;  // force reservoir sampling
    options.num_threads = threads;
    auto data = CollectSimulationData({&query, &query, &query},
                                      fixture.schema(), cout, featurizer,
                                      options);
    BALSA_CHECK(data.ok(), data.status().ToString());
    return std::move(data).value();
  };

  std::vector<TrainingPoint> baseline = collect(1);
  ASSERT_EQ(baseline.size(), 180u);
  for (int threads : {2, 4}) {
    std::vector<TrainingPoint> run = collect(threads);
    ASSERT_EQ(run.size(), baseline.size());
    for (size_t i = 0; i < run.size(); ++i) {
      EXPECT_EQ(run[i].label, baseline[i].label);
      EXPECT_EQ(run[i].query, baseline[i].query);
      EXPECT_EQ(run[i].plan.features, baseline[i].plan.features);
      EXPECT_EQ(run[i].plan.left, baseline[i].plan.left);
      EXPECT_EQ(run[i].plan.right, baseline[i].plan.right);
    }
  }
}

}  // namespace
}  // namespace balsa
