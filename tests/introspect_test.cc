// Introspection end-to-end: EXPLAIN ANALYZE actuals are bitwise-equal to
// per-node Execute results, profiling never perturbs execution, the
// slow-query log captures latency / uncoalesced-miss / row-cap events with
// the request's own stage spans, and the statusz page renders from live
// serving state.
#include "src/introspect/explain.h"

#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/exec/executor.h"
#include "src/introspect/statusz.h"
#include "src/obs/sampler.h"
#include "src/serving/optimizer_server.h"
#include "src/serving/replay_driver.h"
#include "test_util.h"

namespace balsa {
namespace {

/// Minimal JSON syntax check: quotes pair up (with escapes) and braces /
/// brackets balance outside strings. Enough to catch a renderer emitting a
/// structurally broken line.
bool JsonParses(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip the escaped character
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string && !s.empty() && s.front() == '{';
}

class IntrospectTest : public ::testing::Test {
 protected:
  IntrospectTest()
      : fixture_(testing::MakeStarFixture()),
        query_(testing::MakeStarQuery(fixture_.schema())),
        executor_(fixture_.db.get()) {}

  /// Left-deep 4-relation plan over the star query:
  /// ((sales x customer) x product) x store.
  Plan StarPlan() {
    Plan plan;
    int s = plan.AddScan(0, ScanOp::kSeqScan);
    int c = plan.AddScan(1, ScanOp::kSeqScan);
    int p = plan.AddScan(2, ScanOp::kSeqScan);
    int st = plan.AddScan(3, ScanOp::kSeqScan);
    int sc = plan.AddJoin(s, c, JoinOp::kHashJoin);
    int scp = plan.AddJoin(sc, p, JoinOp::kHashJoin);
    plan.set_root(plan.AddJoin(scp, st, JoinOp::kHashJoin));
    BALSA_CHECK(plan.Validate(), "star plan");
    return plan;
  }

  testing::StarFixture fixture_;
  Query query_;
  Executor executor_;
};

TEST_F(IntrospectTest, ExplainAnalyzeActualsMatchPerNodeExecuteBitwise) {
  const Plan plan = StarPlan();
  auto explained = introspect::ExplainAnalyze(executor_, query_, plan,
                                              fixture_.estimator.get());
  ASSERT_TRUE(explained.ok()) << explained.status().ToString();
  EXPECT_TRUE(explained->analyzed);
  EXPECT_GT(explained->total_micros, 0);

  // Every node in the tree: its reported actual cardinality equals an
  // independent Execute of that subtree, bitwise.
  int checked = 0;
  for (int idx = 0; idx < plan.num_nodes(); ++idx) {
    const introspect::ExplainNode* node = explained->node(idx);
    ASSERT_NE(node, nullptr);
    ASSERT_TRUE(node->analyzed);
    auto sub = executor_.Execute(query_, plan, idx);
    ASSERT_TRUE(sub.ok()) << sub.status().ToString();
    EXPECT_EQ(node->actual_rows, sub->NumRows()) << "node " << idx;
    // With an estimator attached every node carries a Q-error >= 1.
    EXPECT_GE(node->q_error, 1.0) << "node " << idx;
    ++checked;
  }
  EXPECT_EQ(checked, 7);  // 4 scans + 3 joins
  EXPECT_GE(explained->max_q_error, 1.0);
}

TEST_F(IntrospectTest, ProfiledExecutionIsBitwiseIdenticalToUnprofiled) {
  const Plan plan = StarPlan();
  auto plain = executor_.Execute(query_, plan);
  ASSERT_TRUE(plain.ok());

  ExecutorOptions options;
  options.profile = true;
  Executor profiled(executor_.snapshot(), options);
  ExecutionProfile profile;
  auto prof = profiled.ExecuteProfiled(query_, plan, &profile);
  ASSERT_TRUE(prof.ok());

  EXPECT_EQ(plain->rels, prof->rels);
  EXPECT_EQ(plain->tuples, prof->tuples);
  EXPECT_EQ(plain->capped, prof->capped);
}

TEST_F(IntrospectTest, ProfileOffYieldsEmptyProfileAndSameResult) {
  const Plan plan = StarPlan();
  ExecutionProfile profile;
  profile.total_micros = 123;  // must be cleared even on the off path
  auto result = executor_.ExecuteProfiled(query_, plan, &profile);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(profile.nodes.empty());
  EXPECT_EQ(profile.total_micros, 0);

  auto plain = executor_.Execute(query_, plan);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->tuples, result->tuples);
}

TEST_F(IntrospectTest, ScanProfilesReportPathTaken) {
  ExecutorOptions options;
  options.profile = true;
  Executor profiled(executor_.snapshot(), options);

  // sales has no filters: full chunked scan, no index.
  NodeProfile full;
  ASSERT_TRUE(profiled.Scan(query_, 0, &full).ok());
  EXPECT_FALSE(full.used_index);
  EXPECT_GT(full.chunks_total, 0);
  EXPECT_GE(full.morsels, 1);
  EXPECT_GT(full.rows_out, 0);

  // customer has an equality filter: served from the hash index.
  NodeProfile indexed;
  ASSERT_TRUE(profiled.Scan(query_, 1, &indexed).ok());
  EXPECT_TRUE(indexed.used_index);
  EXPECT_EQ(indexed.chunks_total, 0);
}

TEST_F(IntrospectTest, RowCapMarksNodeAndPlanCapped) {
  const Plan plan = StarPlan();
  ExecutorOptions options;
  options.profile = true;
  options.row_cap = 8;  // far below the star join's intermediates
  Executor tiny(executor_.snapshot(), options);
  ExecutionProfile profile;
  auto result = tiny.ExecuteProfiled(query_, plan, &profile);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->capped);
  EXPECT_TRUE(profile.AnyCapped());

  auto explained = introspect::ExplainAnalyze(tiny, query_, plan,
                                              fixture_.estimator.get());
  ASSERT_TRUE(explained.ok());
  EXPECT_TRUE(explained->any_capped);
  EXPECT_NE(explained->ToText().find("CAPPED"), std::string::npos);
}

TEST_F(IntrospectTest, ExplainPlanAnnotatesEstimatesWithoutExecuting) {
  const Plan plan = StarPlan();
  introspect::PlanExplain explained =
      introspect::ExplainPlan(query_, plan, fixture_.estimator.get());
  EXPECT_FALSE(explained.analyzed);
  for (int idx = 0; idx < plan.num_nodes(); ++idx) {
    const introspect::ExplainNode* node = explained.node(idx);
    ASSERT_NE(node, nullptr);
    EXPECT_GE(node->est_rows, 0) << "node " << idx;
    EXPECT_FALSE(node->analyzed);
  }
  const std::string text = explained.ToText();
  EXPECT_NE(text.find("HashJoin"), std::string::npos);
  EXPECT_NE(text.find("SeqScan(s)"), std::string::npos);
  EXPECT_EQ(text.find("act="), std::string::npos);
}

TEST_F(IntrospectTest, ExplainJsonIsWellFormed) {
  const Plan plan = StarPlan();
  auto explained = introspect::ExplainAnalyze(executor_, query_, plan,
                                              fixture_.estimator.get());
  ASSERT_TRUE(explained.ok());
  const std::string json = explained->ToJson();
  EXPECT_TRUE(JsonParses(json)) << json;
  EXPECT_NE(json.find("\"query\":\"star4\""), std::string::npos);
  EXPECT_NE(json.find("\"children\":["), std::string::npos);
  EXPECT_NE(json.find("\"actual_rows\":"), std::string::npos);
}

TEST(QErrorTest, ClampsAndSymmetric) {
  EXPECT_DOUBLE_EQ(introspect::QError(10, 10), 1.0);
  EXPECT_DOUBLE_EQ(introspect::QError(100, 10), 10.0);
  EXPECT_DOUBLE_EQ(introspect::QError(10, 100), 10.0);
  // Both sides clamp to one row: an estimate of 0.2 for an empty result is
  // not an error at all.
  EXPECT_DOUBLE_EQ(introspect::QError(0.2, 0), 1.0);
  EXPECT_DOUBLE_EQ(introspect::QError(0, 50), 50.0);
}

// --- Serving-side introspection -----------------------------------------

class SlowQueryTest : public ::testing::Test {
 protected:
  SlowQueryTest()
      : fixture_(testing::MakeStarFixture()),
        query_(testing::MakeStarQuery(fixture_.schema())),
        featurizer_(&fixture_.schema(), fixture_.estimator.get()) {
    ValueNetConfig config;
    config.query_dim = featurizer_.query_dim();
    config.node_dim = featurizer_.node_dim();
    config.tree_hidden1 = 16;
    config.tree_hidden2 = 8;
    config.mlp_hidden = 8;
    config.init_seed = 11;
    network_ = std::make_unique<ValueNetwork>(config);
  }

  std::unique_ptr<OptimizerServer> MakeServer(
      OptimizerServerOptions options) {
    options.planner.beam_size = 5;
    options.planner.top_k = 2;
    return std::make_unique<OptimizerServer>(&fixture_.schema(), &featurizer_,
                                             network_.get(),
                                             fixture_.oracle.get(), options);
  }

  /// Star-query filter variants (distinct fingerprints) for Zipf replays.
  std::vector<Query> Variants(int n) {
    std::vector<Query> queries;
    for (int region = 0; region < n; ++region) {
      QueryBuilder builder(&fixture_.schema(), "star_v" + std::to_string(region));
      auto query = builder.From("sales", "s")
                       .From("customer", "c")
                       .From("product", "p")
                       .JoinEq("s.customer_id", "c.id")
                       .JoinEq("s.product_id", "p.id")
                       .Filter("c.region", PredOp::kEq, region)
                       .Build();
      BALSA_CHECK(query.ok(), "variant");
      Query q = std::move(query).value();
      q.set_id(region);
      queries.push_back(std::move(q));
    }
    return queries;
  }

  testing::StarFixture fixture_;
  Query query_;
  Featurizer featurizer_;
  std::unique_ptr<ValueNetwork> network_;
};

TEST_F(SlowQueryTest, UncoalescedMissesAreLoggedWithStructure) {
  OptimizerServerOptions options;
  options.slow_query.capacity = 16;
  options.slow_query.log_uncoalesced_misses = true;
  auto server = MakeServer(options);

  ASSERT_TRUE(server->Optimize(query_).ok());  // miss -> logged
  ASSERT_TRUE(server->Optimize(query_).ok());  // hit -> not logged

  auto events = server->RecentSlowQueries();
  ASSERT_EQ(events.size(), 1u);
  const SlowQueryEvent& e = events[0];
  EXPECT_EQ(e.cause, SlowQueryCause::kUncoalescedMiss);
  EXPECT_EQ(e.outcome, "miss");
  EXPECT_EQ(e.query_name, "star4");
  EXPECT_NE(e.fingerprint, 0u);
  EXPECT_GT(e.serve_micros, 0);
  EXPECT_NE(e.plan_summary.find("("), std::string::npos);
  EXPECT_EQ(server->slow_query_log().recorded(), 1);
}

TEST_F(SlowQueryTest, LatencyThresholdZeroDisablesLatencyTrigger) {
  OptimizerServerOptions options;
  options.slow_query.capacity = 16;  // row-cap feedback stays on
  auto server = MakeServer(options);
  ASSERT_TRUE(server->Optimize(query_).ok());
  ASSERT_TRUE(server->Optimize(query_).ok());
  EXPECT_TRUE(server->RecentSlowQueries().empty());

  // capacity 0 disables the log outright.
  OptimizerServerOptions off;
  off.slow_query.capacity = 0;
  off.slow_query.log_uncoalesced_misses = true;
  auto disabled = MakeServer(off);
  ASSERT_TRUE(disabled->Optimize(query_).ok());
  EXPECT_TRUE(disabled->RecentSlowQueries().empty());
  EXPECT_FALSE(disabled->slow_query_log().enabled());
}

TEST_F(SlowQueryTest, ZipfReplayWithInjectedRowCapPlanIsCaptured) {
  OptimizerServerOptions options;
  options.slow_query.capacity = 32;
  options.trace.sample_every = 1;
  auto server = MakeServer(options);

  // A short Zipf replay: background traffic none of which triggers the log
  // (the latency threshold is off, misses are not logged).
  std::vector<Query> variants = Variants(6);
  std::vector<const Query*> workload;
  for (const Query& q : variants) workload.push_back(&q);
  ReplayOptions replay;
  replay.num_clients = 4;
  replay.requests_per_client = 40;
  replay.zipf_s = 0.9;
  replay.seed = 5;
  auto report = ReplayWorkload(server.get(), workload, replay);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(server->RecentSlowQueries().empty());

  // The injected disaster: serve the 4-relation star query, then execute
  // its plan under the request's own trace with a row cap the join
  // pipeline must hit, and report the profile back.
  auto served = server->Optimize(query_);
  ASSERT_TRUE(served.ok());
  auto traces = server->tracer()->RecentTraces();
  ASSERT_FALSE(traces.empty());
  std::shared_ptr<obs::Trace> trace = traces.back();

  ExecutorOptions exec_options;
  exec_options.profile = true;
  exec_options.row_cap = 8;
  Executor executor(fixture_.db.get(), exec_options);
  ExecutionProfile profile;
  {
    obs::ScopedTraceContext scope(server->tracer(), trace);
    auto executed = executor.ExecuteProfiled(query_, served->plan, &profile);
    ASSERT_TRUE(executed.ok());
    ASSERT_TRUE(profile.AnyCapped());
    server->RecordExecution(query_, *served, profile);
  }

  auto events = server->RecentSlowQueries();
  ASSERT_EQ(events.size(), 1u);
  const SlowQueryEvent& e = events[0];
  EXPECT_EQ(e.cause, SlowQueryCause::kRowCap);
  EXPECT_EQ(e.query_name, "star4");
  EXPECT_TRUE(e.capped);
  EXPECT_GT(e.exec_micros, 0);

  // The event carries the request's spans: serving stages plus the
  // executor's, at least 4 distinct.
  std::set<obs::TraceStage> stages;
  for (const obs::TraceSpan& span : e.spans) stages.insert(span.stage);
  EXPECT_GE(stages.size(), 4u) << "spans " << e.spans.size();
  EXPECT_TRUE(stages.count(obs::TraceStage::kFingerprint) > 0);
  EXPECT_TRUE(stages.count(obs::TraceStage::kExecScan) > 0);

  // The JSONL export is one parseable object per line.
  const std::string jsonl = server->slow_query_log().ToJsonl();
  ASSERT_FALSE(jsonl.empty());
  const std::string line = jsonl.substr(0, jsonl.find('\n'));
  EXPECT_TRUE(JsonParses(line)) << line;
  EXPECT_NE(line.find("\"cause\":\"row_cap\""), std::string::npos);
  EXPECT_NE(line.find("\"spans\":["), std::string::npos);
}

TEST_F(SlowQueryTest, StatuszRendersFromLiveServingState) {
  obs::MetricsRegistry registry;
  OptimizerServerOptions options;
  options.metrics = &registry;
  options.trace.sample_every = 1;
  options.slow_query.capacity = 8;
  options.slow_query.log_uncoalesced_misses = true;
  auto server = MakeServer(options);
  ASSERT_TRUE(server->Optimize(query_).ok());
  ASSERT_TRUE(server->Optimize(query_).ok());

  obs::TimeSeriesSampler sampler(&registry);
  sampler.SampleOnce();
  ASSERT_TRUE(server->Optimize(query_).ok());
  sampler.SampleOnce();

  introspect::StatuszSources sources;
  sources.registry = &registry;
  sources.sampler = &sampler;
  sources.server = server.get();
  const std::string text = introspect::StatuszText(sources);
  EXPECT_NE(text.find("== statusz =="), std::string::npos);
  EXPECT_NE(text.find("serving: 3 requests"), std::string::npos);
  EXPECT_NE(text.find("recent slow queries"), std::string::npos);
  EXPECT_NE(text.find("star4"), std::string::npos);

  const std::string json = introspect::StatuszJson(sources);
  EXPECT_TRUE(JsonParses(json)) << json;
  EXPECT_NE(json.find("\"requests\":3"), std::string::npos);
  EXPECT_NE(json.find("\"recent_slow_queries\":["), std::string::npos);

  // Statusz degrades gracefully to a bare registry: no sampler, no server.
  introspect::StatuszSources bare;
  bare.registry = &registry;
  EXPECT_TRUE(JsonParses(introspect::StatuszJson(bare)));
}

}  // namespace
}  // namespace balsa
