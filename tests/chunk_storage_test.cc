// Chunk-boundary regressions for the chunked column store: publication must
// share every untouched chunk by pointer (asserted via chunk_ptr identity
// and dedup byte accounting), appends landing exactly on a seal boundary
// must keep the full-chunks-except-last invariant, swap-remove must move
// rows across chunk boundaries correctly, and min/max chunk summaries must
// treat negative values as real while excluding only exactly kNullValue.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/exec/executor.h"
#include "src/plan/query_builder.h"
#include "src/storage/column_store.h"

namespace balsa {
namespace {

Schema OneTableSchema(int num_attrs = 1) {
  Schema schema;
  ColumnDef id;
  id.name = "id";
  id.kind = ColumnKind::kPrimaryKey;
  std::vector<ColumnDef> cols = {id};
  for (int i = 0; i < num_attrs; ++i) {
    ColumnDef v;
    v.name = "v" + std::to_string(i);
    v.kind = ColumnKind::kAttribute;
    v.domain_size = 1 << 20;
    cols.push_back(v);
  }
  EXPECT_TRUE(schema.AddTable({"t", 16, cols}).ok());
  return schema;
}

/// Installs `rows` rows into table 0 with id == row and v0 == value_fn(row).
template <typename Fn>
void Install(Database* db, int64_t rows, Fn value_fn) {
  TableData data;
  data.row_count = rows;
  data.columns.resize(2);
  for (int64_t r = 0; r < rows; ++r) {
    data.columns[0].push_back(r);
    data.columns[1].push_back(value_fn(r));
  }
  ASSERT_TRUE(db->SetTableData(0, std::move(data)).ok());
}

TEST(ChunkStorageTest, ColumnInvariantAllButLastChunkFull) {
  for (int64_t rows : {int64_t{0}, int64_t{1}, kChunkRows - 1, kChunkRows,
                       kChunkRows + 1, 3 * kChunkRows + 100}) {
    std::vector<int64_t> values;
    for (int64_t i = 0; i < rows; ++i) values.push_back(i);
    auto column = ChunkedColumn::FromValues(values);
    EXPECT_EQ(column->size(), rows);
    EXPECT_EQ(column->num_chunks(), ChunkCountForRows(rows));
    for (int c = 0; c + 1 < column->num_chunks(); ++c) {
      EXPECT_TRUE(column->chunk(c).full());
    }
    for (int64_t i = 0; i < rows; ++i) EXPECT_EQ((*column)[i], i);
    // Range-for agrees with random access.
    int64_t expect = 0;
    for (int64_t v : *column) EXPECT_EQ(v, expect++);
    EXPECT_EQ(column->Materialize(), values);
  }
}

TEST(ChunkStorageTest, AppendSharesEveryFullChunkByPointer) {
  Database db(OneTableSchema());
  Install(&db, 2 * kChunkRows + 100, [](int64_t r) { return 7 * r; });
  auto v1 = db.GetTableVersion(0);

  ASSERT_TRUE(db.AppendRows(0, {{900000, 1}, {900001, 2}}).ok());
  auto v2 = db.GetTableVersion(0);
  ASSERT_EQ(v2->row_count(), 2 * kChunkRows + 102);
  for (int c = 0; c < 2; ++c) {
    const ChunkedColumn& before = v1->column(c);
    const ChunkedColumn& after = v2->column(c);
    ASSERT_EQ(after.num_chunks(), 3);
    // Both full chunks are the same object; only the partial tail was
    // rebuilt.
    EXPECT_EQ(after.chunk_ptr(0), before.chunk_ptr(0));
    EXPECT_EQ(after.chunk_ptr(1), before.chunk_ptr(1));
    EXPECT_NE(after.chunk_ptr(2), before.chunk_ptr(2));
  }
  EXPECT_EQ(v2->column(0)[2 * kChunkRows + 100], 900000);
  EXPECT_EQ(v2->column(1)[2 * kChunkRows + 101], 2);
}

TEST(ChunkStorageTest, AppendLandingExactlyOnSealBoundary) {
  Database db(OneTableSchema());
  Install(&db, kChunkRows - 3, [](int64_t r) { return r; });

  // Fill the tail to exactly kChunkRows: one full, sealed chunk.
  ASSERT_TRUE(
      db.AppendRows(0, {{10001, 1}, {10002, 2}, {10003, 3}}).ok());
  auto sealed = db.GetTableVersion(0);
  ASSERT_EQ(sealed->row_count(), kChunkRows);
  ASSERT_EQ(sealed->column(0).num_chunks(), 1);
  EXPECT_TRUE(sealed->column(0).chunk(0).full());

  // The next append opens a fresh chunk and shares the sealed one.
  ASSERT_TRUE(db.AppendRows(0, {{10004, 4}}).ok());
  auto next = db.GetTableVersion(0);
  ASSERT_EQ(next->column(0).num_chunks(), 2);
  EXPECT_EQ(next->column(0).chunk_ptr(0), sealed->column(0).chunk_ptr(0));
  EXPECT_EQ(next->column(0).chunk(1).size(), 1);
  EXPECT_EQ(next->column(0)[kChunkRows], 10004);
}

TEST(ChunkStorageTest, AppendSpanningMultipleNewChunks) {
  Database db(OneTableSchema());
  Install(&db, 100, [](int64_t r) { return r; });
  std::vector<std::vector<int64_t>> rows;
  const int64_t batch = 2 * kChunkRows + 50;
  for (int64_t i = 0; i < batch; ++i) rows.push_back({1000 + i, 2000 + i});
  ASSERT_TRUE(db.AppendRows(0, rows).ok());
  auto version = db.GetTableVersion(0);
  ASSERT_EQ(version->row_count(), 100 + batch);
  const ChunkedColumn& col = version->column(0);
  ASSERT_EQ(col.num_chunks(), ChunkCountForRows(100 + batch));
  for (int c = 0; c + 1 < col.num_chunks(); ++c) {
    EXPECT_TRUE(col.chunk(c).full());
  }
  for (int64_t i = 0; i < batch; ++i) EXPECT_EQ(col[100 + i], 1000 + i);
}

TEST(ChunkStorageTest, CrossBoundarySwapRemoveCopiesOnlyTouchedChunks) {
  Database db(OneTableSchema());
  const int64_t rows = 3 * kChunkRows + 100;
  Install(&db, rows, [](int64_t r) { return 10 * r; });
  auto before = db.GetTableVersion(0);

  // Remove one row in chunk 0: the last row (in the tail chunk) swaps into
  // its slot. Chunks 1 and 2 are untouched and must stay shared.
  ASSERT_TRUE(db.RemoveRows(0, {5}).ok());
  auto after = db.GetTableVersion(0);
  ASSERT_EQ(after->row_count(), rows - 1);
  for (int c = 0; c < 2; ++c) {
    EXPECT_NE(after->column(c).chunk_ptr(0), before->column(c).chunk_ptr(0));
    EXPECT_EQ(after->column(c).chunk_ptr(1), before->column(c).chunk_ptr(1));
    EXPECT_EQ(after->column(c).chunk_ptr(2), before->column(c).chunk_ptr(2));
    EXPECT_NE(after->column(c).chunk_ptr(3), before->column(c).chunk_ptr(3));
  }
  EXPECT_EQ(after->column(0)[5], rows - 1);       // moved id
  EXPECT_EQ(after->column(1)[5], 10 * (rows - 1));  // moved value

  // Remove the entire tail chunk: it disappears; all full chunks shared.
  std::vector<int64_t> tail_ids;
  for (int64_t r = 3 * kChunkRows; r < rows - 1; ++r) tail_ids.push_back(r);
  ASSERT_TRUE(db.RemoveRows(0, tail_ids).ok());
  auto popped = db.GetTableVersion(0);
  ASSERT_EQ(popped->row_count(), 3 * kChunkRows);
  ASSERT_EQ(popped->column(0).num_chunks(), 3);
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(popped->column(0).chunk_ptr(c), after->column(0).chunk_ptr(c));
  }
}

TEST(ChunkStorageTest, SingleCellUpdateCopiesExactlyOneChunk) {
  Database db(OneTableSchema());
  const int64_t rows = 2 * kChunkRows + 100;
  Install(&db, rows, [](int64_t r) { return r % 97; });
  Snapshot before = db.GetSnapshot();
  const TableVersion& v1 = before.table(0);
  const size_t before_bytes = before.DataBytes();

  // Touch one cell in the middle chunk of column 1.
  const int64_t row = kChunkRows + 7;
  ASSERT_TRUE(db.SetValue(0, 1, row, 123456).ok());
  Snapshot after = db.GetSnapshot();
  const TableVersion& v2 = after.table(0);

  // Column 0 is shared whole; column 1 shares all but the dirty chunk.
  EXPECT_EQ(v2.column_ptr(0), v1.column_ptr(0));
  EXPECT_NE(v2.column_ptr(1), v1.column_ptr(1));
  EXPECT_EQ(v2.column(1).chunk_ptr(0), v1.column(1).chunk_ptr(0));
  EXPECT_NE(v2.column(1).chunk_ptr(1), v1.column(1).chunk_ptr(1));
  EXPECT_EQ(v2.column(1).chunk_ptr(2), v1.column(1).chunk_ptr(2));
  EXPECT_EQ(v2.column(1)[row], 123456);

  // Dedup accounting: the same bytes per snapshot, and pinning both costs
  // exactly one extra (full) chunk.
  EXPECT_EQ(after.DataBytes(), before_bytes);
  EXPECT_EQ(RetainedDataBytes({&before, &after}),
            before_bytes + kChunkRows * sizeof(int64_t));
}

TEST(ChunkStorageTest, OneRowAppendOnMillionRowTableRetainsOneChunk) {
  Database db(OneTableSchema(/*num_attrs=*/0));
  TableData data;
  data.row_count = 1'000'000;
  data.columns.resize(1);
  data.columns[0].reserve(1'000'000);
  for (int64_t r = 0; r < 1'000'000; ++r) data.columns[0].push_back(r);
  ASSERT_TRUE(db.SetTableData(0, std::move(data)).ok());

  Snapshot before = db.GetSnapshot();
  const size_t before_bytes = before.DataBytes();
  ASSERT_TRUE(db.AppendRows(0, {{1'000'000}}).ok());
  Snapshot after = db.GetSnapshot();

  // The new version costs ~one (partial) chunk over the old one, not
  // ~table: only the rebuilt tail is new, every full chunk is shared.
  const size_t retained = RetainedDataBytes({&before, &after});
  const int64_t tail_rows = 1'000'000 % kChunkRows + 1;
  EXPECT_EQ(retained, before_bytes +
                          static_cast<size_t>(tail_rows) * sizeof(int64_t));
  EXPECT_LE(retained - before_bytes, kChunkRows * sizeof(int64_t));
  EXPECT_EQ(after.DataBytes(),
            before_bytes + sizeof(int64_t));  // one more row's bytes
}

TEST(ChunkStorageTest, MinMaxSummariesCountNegativesAndExcludeOnlyNull) {
  auto chunk = Chunk::Seal({-5, kNullValue, 7, -2});
  EXPECT_TRUE(chunk->has_non_null());
  EXPECT_EQ(chunk->min_value(), -5);
  EXPECT_EQ(chunk->max_value(), 7);
  EXPECT_TRUE(chunk->MayContain(-5));
  EXPECT_TRUE(chunk->MayContain(-2));
  EXPECT_TRUE(chunk->MayContain(0));
  EXPECT_FALSE(chunk->MayContain(-6));
  EXPECT_FALSE(chunk->MayContain(8));

  auto all_null = Chunk::Seal({kNullValue, kNullValue});
  EXPECT_FALSE(all_null->has_non_null());
  EXPECT_FALSE(all_null->MayContain(0));
  EXPECT_FALSE(all_null->MayContain(kNullValue));
}

TEST(ChunkStorageTest, RebuiltChunkSummariesWidenConservatively) {
  // Copy-on-write rebuilds carry the old chunk's summary forward and widen
  // it with the written values rather than re-scanning — so after an update
  // overwrites the maximum, the summary may stay wide (MayContain remains
  // an over-approximation) but must still cover every live value, and a
  // fresh full seal of the same data tightens back to the exact range.
  Database db(OneTableSchema());
  Install(&db, 100, [](int64_t r) { return r; });  // v0 in [0, 100)
  ASSERT_TRUE(db.SetValue(0, 1, /*row=*/99, /*value=*/5).ok());
  ASSERT_TRUE(db.AppendRows(0, {{100, 250}}).ok());

  Snapshot snap = db.GetSnapshot();
  const Chunk& tail = snap.column(0, 1).chunk(0);
  // 250 was appended, 5 written: both inside the summary. The retired max
  // 99 may linger (conservative), but the bounds cover the live range.
  EXPECT_TRUE(tail.MayContain(250));
  EXPECT_TRUE(tail.MayContain(5));
  EXPECT_LE(tail.min_value(), 0);
  EXPECT_GE(tail.max_value(), 250);

  auto resealed = Chunk::Seal(tail.values());
  EXPECT_EQ(resealed->min_value(), 0);
  EXPECT_EQ(resealed->max_value(), 250);
}

TEST(ChunkStorageTest, ChunkSkippingNeverSkipsNegativeValues) {
  // Two chunks: the first holds only non-negative values, the second holds
  // the negatives (and NULLs). A kEq probe for a negative value must skip
  // the first chunk but still find its rows; a probe for NULL matches
  // nothing even though -1 lies inside the second chunk's [min, max].
  Database db(OneTableSchema());
  TableData data;
  data.row_count = 2 * kChunkRows;
  data.columns.resize(2);
  for (int64_t r = 0; r < 2 * kChunkRows; ++r) {
    data.columns[0].push_back(r);
    if (r < kChunkRows) {
      data.columns[1].push_back(r % 100);
    } else if (r == kChunkRows) {
      data.columns[1].push_back(-55);
    } else {
      data.columns[1].push_back(r % 3 == 0 ? kNullValue : -(r % 50) - 2);
    }
  }
  ASSERT_TRUE(db.SetTableData(0, std::move(data)).ok());

  QueryBuilder neg_builder(&db.schema(), "neg");
  auto neg = neg_builder.From("t", "a")
                 .Filter("a.v0", PredOp::kEq, -55)
                 .Build();
  ASSERT_TRUE(neg.ok());
  QueryBuilder null_builder(&db.schema(), "null");
  auto null_probe = null_builder.From("t", "a")
                        .Filter("a.v0", PredOp::kEq, kNullValue)
                        .Build();
  ASSERT_TRUE(null_probe.ok());

  for (bool skipping : {true, false}) {
    ExecutorOptions options;
    options.use_index_for_eq = false;
    options.use_chunk_skipping = skipping;
    Executor executor(&db, options);
    auto found = executor.Scan(*neg, 0);
    ASSERT_TRUE(found.ok());
    ASSERT_EQ(found->NumRows(), 1);
    EXPECT_EQ(found->tuples[0][0], static_cast<uint32_t>(kChunkRows));
    auto none = executor.Scan(*null_probe, 0);
    ASSERT_TRUE(none.ok());
    EXPECT_EQ(none->NumRows(), 0);
  }
}

TEST(ChunkStorageTest, HashIndexSpansChunkBoundariesAscending) {
  // The same value in several chunks: lookups return ascending row ids
  // crossing every boundary, and negatives are indexed while NULLs are not.
  std::vector<int64_t> values(static_cast<size_t>(2 * kChunkRows + 10), 0);
  values[100] = -9;
  values[static_cast<size_t>(kChunkRows + 3)] = -9;
  values[static_cast<size_t>(2 * kChunkRows + 5)] = -9;
  values[200] = kNullValue;
  auto column = ChunkedColumn::FromValues(std::move(values));
  HashIndex index(*column);
  const std::vector<uint32_t> expected = {
      100, static_cast<uint32_t>(kChunkRows + 3),
      static_cast<uint32_t>(2 * kChunkRows + 5)};
  EXPECT_EQ(index.Lookup(-9), expected);
  EXPECT_TRUE(index.Lookup(kNullValue).empty());
}

}  // namespace
}  // namespace balsa
