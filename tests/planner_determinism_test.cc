// Determinism guarantees of the beam search planner: with
// epsilon_collapse == 0 the search is a pure function of (query, network),
// results come back sorted ascending by predicted latency, and top_k is a
// hard cap. These properties are what make simulation experience replayable
// across training iterations (§4.2, §6.1).
#include "src/balsa/planner.h"

#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"

namespace balsa {
namespace {

class PlannerDeterminismTest : public ::testing::Test {
 protected:
  PlannerDeterminismTest()
      : fixture_(testing::MakeStarFixture()),
        query_(testing::MakeStarQuery(fixture_.schema())),
        featurizer_(&fixture_.schema(), fixture_.estimator.get()) {
    ValueNetConfig config;
    config.query_dim = featurizer_.query_dim();
    config.node_dim = featurizer_.node_dim();
    config.tree_hidden1 = 16;
    config.tree_hidden2 = 8;
    config.mlp_hidden = 8;
    config.init_seed = 11;
    network_ = std::make_unique<ValueNetwork>(config);
  }

  BeamSearchPlanner MakePlanner(PlannerOptions options = {}) {
    return BeamSearchPlanner(&fixture_.schema(), &featurizer_,
                             network_.get(), options);
  }

  testing::StarFixture fixture_;
  Query query_;
  Featurizer featurizer_;
  std::unique_ptr<ValueNetwork> network_;
};

TEST_F(PlannerDeterminismTest, AscendingPredictedLatency) {
  PlannerOptions options;
  options.beam_size = 10;
  options.top_k = 8;
  auto result = MakePlanner(options).TopK(query_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GE(result->plans.size(), 2u);
  for (size_t i = 1; i < result->plans.size(); ++i) {
    EXPECT_LE(result->plans[i - 1].predicted_ms,
              result->plans[i].predicted_ms)
        << "plans out of order at index " << i;
  }
}

TEST_F(PlannerDeterminismTest, RespectsTopK) {
  for (int k : {1, 3, 7}) {
    PlannerOptions options;
    options.beam_size = 10;
    options.top_k = k;
    auto result = MakePlanner(options).TopK(query_);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_LE(static_cast<int>(result->plans.size()), k);
    EXPECT_GE(result->plans.size(), 1u);
  }
}

TEST_F(PlannerDeterminismTest, DeterministicWithoutEpsilonCollapse) {
  PlannerOptions options;
  options.beam_size = 10;
  options.top_k = 5;
  options.epsilon_collapse = 0.0;
  BeamSearchPlanner planner = MakePlanner(options);

  auto first = planner.TopK(query_);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  for (int run = 0; run < 3; ++run) {
    auto repeat = planner.TopK(query_);
    ASSERT_TRUE(repeat.ok()) << repeat.status().ToString();
    ASSERT_EQ(repeat->plans.size(), first->plans.size());
    for (size_t i = 0; i < first->plans.size(); ++i) {
      EXPECT_EQ(repeat->plans[i].plan.Fingerprint(),
                first->plans[i].plan.Fingerprint())
          << "run " << run << " diverged at plan " << i;
      EXPECT_DOUBLE_EQ(repeat->plans[i].predicted_ms,
                       first->plans[i].predicted_ms);
    }
  }
}

TEST_F(PlannerDeterminismTest, DeterministicAcrossPlannerInstances) {
  // A freshly constructed planner over the same schema/network must agree
  // with the first: no hidden per-instance state may leak into the search.
  PlannerOptions options;
  options.beam_size = 10;
  options.top_k = 5;
  auto a = MakePlanner(options).TopK(query_);
  auto b = MakePlanner(options).TopK(query_);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->plans.size(), b->plans.size());
  for (size_t i = 0; i < a->plans.size(); ++i) {
    EXPECT_EQ(a->plans[i].plan.Fingerprint(), b->plans[i].plan.Fingerprint());
  }
}

}  // namespace
}  // namespace balsa
