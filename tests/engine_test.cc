#include "src/engine/execution_engine.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace balsa {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  EngineTest()
      : fixture_(testing::MakeStarFixture()),
        query_(testing::MakeStarQuery(fixture_.schema())) {
    engine_ = std::make_unique<ExecutionEngine>(
        fixture_.db.get(), fixture_.oracle.get(), PostgresLikeEngineOptions());
  }

  Plan LeftDeepAll(JoinOp op = JoinOp::kHashJoin) {
    Plan p;
    int s = p.AddScan(0, ScanOp::kSeqScan);
    int c = p.AddScan(1, ScanOp::kSeqScan);
    int sc = p.AddJoin(s, c, op);
    int pr = p.AddScan(2, ScanOp::kSeqScan);
    int scp = p.AddJoin(sc, pr, op);
    int st = p.AddScan(3, ScanOp::kSeqScan);
    p.AddJoin(scp, st, op);
    return p;
  }

  testing::StarFixture fixture_;
  Query query_;
  std::unique_ptr<ExecutionEngine> engine_;
};

TEST_F(EngineTest, ExecutesAndCaches) {
  Plan plan = LeftDeepAll();
  auto first = engine_->Execute(query_, plan);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->from_cache);
  EXPECT_GT(first->latency_ms, 0);
  auto second = engine_->Execute(query_, plan);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->from_cache);
  EXPECT_EQ(second->latency_ms, first->latency_ms);
  EXPECT_EQ(engine_->num_real_executions(), 1);
}

TEST_F(EngineTest, NoiseIsBoundedAroundNoiseless) {
  Plan plan = LeftDeepAll();
  auto noiseless = engine_->NoiselessLatency(query_, plan);
  auto executed = engine_->Execute(query_, plan);
  ASSERT_TRUE(noiseless.ok() && executed.ok());
  EXPECT_GT(executed->latency_ms, *noiseless * 0.5);
  EXPECT_LT(executed->latency_ms, *noiseless * 2.0);
}

TEST_F(EngineTest, TimeoutKillsSlowPlans) {
  Plan plan = LeftDeepAll();
  auto result = engine_->Execute(query_, plan, 0.001);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->timed_out);
  EXPECT_DOUBLE_EQ(result->latency_ms, 0.001);  // time spent = kill time
}

TEST_F(EngineTest, PlanQualityChangesLatency) {
  // On a larger fact table, all-NL join orders that defer the selective
  // dimension must be far slower than the filtered-first hash plan.
  auto big = testing::MakeStarFixture(/*seed=*/7, /*fact_rows=*/40000);
  Query query = testing::MakeStarQuery(big.schema());
  ExecutionEngine engine(big.db.get(), big.oracle.get(),
                         PostgresLikeEngineOptions());
  // Good: hash joins building on the small (dimension) side.
  Plan good;
  {
    int c = good.AddScan(1, ScanOp::kSeqScan);
    int s = good.AddScan(0, ScanOp::kSeqScan);
    int cs = good.AddJoin(c, s, JoinOp::kHashJoin);
    int pr = good.AddScan(2, ScanOp::kSeqScan);
    int j2 = good.AddJoin(pr, cs, JoinOp::kHashJoin);
    int st = good.AddScan(3, ScanOp::kSeqScan);
    good.AddJoin(st, j2, JoinOp::kHashJoin);
  }
  Plan bad;
  {
    int s = bad.AddScan(0, ScanOp::kSeqScan);
    int st = bad.AddScan(3, ScanOp::kSeqScan);
    int j1 = bad.AddJoin(s, st, JoinOp::kNLJoin);
    int pr = bad.AddScan(2, ScanOp::kSeqScan);
    int j2 = bad.AddJoin(j1, pr, JoinOp::kNLJoin);
    int c = bad.AddScan(1, ScanOp::kSeqScan);
    bad.AddJoin(j2, c, JoinOp::kNLJoin);
  }
  auto lg = engine.NoiselessLatency(query, good);
  auto lb = engine.NoiselessLatency(query, bad);
  ASSERT_TRUE(lg.ok() && lb.ok());
  EXPECT_GT(*lb, *lg * 2);
}

TEST_F(EngineTest, CommDbRejectsBushyPlans) {
  ExecutionEngine commdb(fixture_.db.get(), fixture_.oracle.get(),
                         CommDbLikeEngineOptions());
  // The rejection is purely shape-based (a hint-interface property), so the
  // plan need not be semantically executable.
  Plan genuinely_bushy;
  {
    int a = genuinely_bushy.AddScan(0, ScanOp::kSeqScan);
    int b = genuinely_bushy.AddScan(1, ScanOp::kSeqScan);
    int ab = genuinely_bushy.AddJoin(a, b, JoinOp::kHashJoin);
    int x = genuinely_bushy.AddScan(2, ScanOp::kSeqScan);
    int y = genuinely_bushy.AddScan(3, ScanOp::kSeqScan);
    int xy = genuinely_bushy.AddJoin(x, y, JoinOp::kHashJoin);
    genuinely_bushy.AddJoin(ab, xy, JoinOp::kHashJoin);
  }
  EXPECT_FALSE(commdb.AcceptsPlan(genuinely_bushy));
  EXPECT_TRUE(engine_->AcceptsPlan(genuinely_bushy));
  auto result = commdb.Execute(query_, genuinely_bushy);
  EXPECT_FALSE(result.ok());
}

TEST_F(EngineTest, EnginesDifferInLatencyProfile) {
  ExecutionEngine commdb(fixture_.db.get(), fixture_.oracle.get(),
                         CommDbLikeEngineOptions());
  Plan plan = LeftDeepAll();
  auto pg = engine_->NoiselessLatency(query_, plan);
  auto cd = commdb.NoiselessLatency(query_, plan);
  ASSERT_TRUE(pg.ok() && cd.ok());
  EXPECT_NE(*pg, *cd);
}

TEST_F(EngineTest, DisasterFloorAppliesToCappedPlans) {
  ExecutorOptions tiny_cap;
  tiny_cap.row_cap = 5;
  CardOracle capped_oracle(fixture_.db.get(), tiny_cap);
  EngineOptions options = PostgresLikeEngineOptions();
  ExecutionEngine engine(fixture_.db.get(), &capped_oracle, options);
  auto latency = engine.NoiselessLatency(query_, LeftDeepAll());
  ASSERT_TRUE(latency.ok());
  EXPECT_GE(*latency, options.disaster_min_latency_ms);
}

TEST(PoolModelTest, MakespanBalancesLoad) {
  ExecutionPoolModel pool(2);
  // Jobs: 4+3 vs 5 -> makespan 7 with greedy least-loaded placement.
  EXPECT_DOUBLE_EQ(pool.Makespan({5, 4, 3}), 7);
  ExecutionPoolModel one(1);
  EXPECT_DOUBLE_EQ(one.Makespan({5, 4, 3}), 12);
  // More workers never increase the makespan.
  ExecutionPoolModel four(4);
  EXPECT_LE(four.Makespan({5, 4, 3}), pool.Makespan({5, 4, 3}));
}

}  // namespace
}  // namespace balsa
