#include "src/balsa/simulation.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace balsa {
namespace {

class SimulationTest : public ::testing::Test {
 protected:
  SimulationTest()
      : fixture_(testing::MakeStarFixture()),
        query_(testing::MakeStarQuery(fixture_.schema())),
        featurizer_(&fixture_.schema(), fixture_.estimator.get()),
        cout_(fixture_.estimator, &fixture_.schema()) {}

  testing::StarFixture fixture_;
  Query query_;
  Featurizer featurizer_;
  CoutCostModel cout_;
};

TEST_F(SimulationTest, CollectsAugmentedPoints) {
  SimulationOptions options;
  options.max_points_per_query = 0;  // unlimited
  SimulationStats stats;
  auto data = CollectSimulationData({&query_}, fixture_.schema(), cout_,
                                    featurizer_, options, &stats);
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_GT(data->size(), 0u);
  EXPECT_EQ(stats.num_points, data->size());
  EXPECT_EQ(stats.num_queries_used, 1);
  // Augmentation multiplies enumerated plans into more points.
  EXPECT_GT(stats.num_points, stats.num_enumerated_plans);
  for (const TrainingPoint& pt : *data) {
    EXPECT_GT(pt.label, 0);
    EXPECT_EQ(pt.query.size(), static_cast<size_t>(featurizer_.query_dim()));
  }
}

TEST_F(SimulationTest, ReservoirCapsPerQuery) {
  SimulationOptions options;
  options.max_points_per_query = 50;
  auto data = CollectSimulationData({&query_}, fixture_.schema(), cout_,
                                    featurizer_, options);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->size(), 50u);
}

TEST_F(SimulationTest, SkipsLargeQueries) {
  SimulationOptions options;
  options.skip_queries_with_relations_ge = 4;  // the star query has 4
  SimulationStats stats;
  auto data = CollectSimulationData({&query_}, fixture_.schema(), cout_,
                                    featurizer_, options, &stats);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(stats.num_queries_skipped, 1);
  EXPECT_TRUE(data->empty());
}

TEST_F(SimulationTest, CanonicalOperatorsReduceEnumeration) {
  SimulationOptions canonical;
  canonical.max_points_per_query = 0;
  SimulationStats stats_canonical;
  ASSERT_TRUE(CollectSimulationData({&query_}, fixture_.schema(), cout_,
                                    featurizer_, canonical, &stats_canonical)
                  .ok());
  SimulationOptions physical = canonical;
  physical.canonical_operators_only = false;
  SimulationStats stats_physical;
  ASSERT_TRUE(CollectSimulationData({&query_}, fixture_.schema(), cout_,
                                    featurizer_, physical, &stats_physical)
                  .ok());
  EXPECT_LT(stats_canonical.num_enumerated_plans,
            stats_physical.num_enumerated_plans);
}

TEST_F(SimulationTest, ScopedQueryFeaturesRestrictTables) {
  SimulationOptions options;
  options.max_points_per_query = 0;
  auto data = CollectSimulationData({&query_}, fixture_.schema(), cout_,
                                    featurizer_, options);
  ASSERT_TRUE(data.ok());
  // Some points must have scoped (partial) query features: at least one
  // table slot zero while others are set.
  bool found_scoped = false;
  for (const TrainingPoint& pt : *data) {
    int nonzero = 0;
    for (float v : pt.query) nonzero += v != 0.f;
    if (nonzero > 0 && nonzero < 4) found_scoped = true;
  }
  EXPECT_TRUE(found_scoped);
}

TEST_F(SimulationTest, DeterministicForSeed) {
  SimulationOptions options;
  options.max_points_per_query = 100;
  options.seed = 9;
  auto a = CollectSimulationData({&query_}, fixture_.schema(), cout_,
                                 featurizer_, options);
  auto b = CollectSimulationData({&query_}, fixture_.schema(), cout_,
                                 featurizer_, options);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].label, (*b)[i].label);
  }
}

}  // namespace
}  // namespace balsa
